#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace robustore::coding {

/// Arithmetic over GF(2^8) with the AES/Rijndael reduction polynomial
/// x^8 + x^4 + x^3 + x + 1 (0x11b). Backs the Reed–Solomon baseline the
/// paper measures in Table 5-1.
///
/// Multiplication uses log/antilog tables built at static-init time;
/// addition is XOR. All operations are branch-light and constant time with
/// respect to values (not a security property here, just speed).
class GF256 {
 public:
  using Elem = std::uint8_t;

  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

  [[nodiscard]] static Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// a / b; b must be non-zero.
  [[nodiscard]] static Elem div(Elem a, Elem b);

  /// Multiplicative inverse; a must be non-zero.
  [[nodiscard]] static Elem inv(Elem a);

  /// a^n with a in the field, n >= 0. The exponent is reduced mod 255
  /// (the multiplicative-group order) before the log-table walk; doing
  /// the reduction after a 32-bit product silently corrupted large n,
  /// since 2^32 ≡ 1 (mod 255) makes the wraparound invisible mod 255.
  [[nodiscard]] static Elem pow(Elem a, unsigned n);

  /// dst += coeff * src over the field, element-wise (the RS inner
  /// loop). Dispatches to the active SIMD tier (byte-shuffle nibble
  /// tables); the scalar fallback indexes the precomputed product row —
  /// both tables are built once at static init, never per call.
  static void mulAddInto(std::span<Elem> dst, std::span<const Elem> src,
                         Elem coeff);

  /// dst *= coeff element-wise.
  static void scaleInto(std::span<Elem> dst, Elem coeff);

  /// The 256-byte product row for `coeff` (full[v] == coeff * v) and the
  /// 32-byte nibble-product pair (low-nibble table then high-nibble
  /// table, the PSHUFB/TBL operand layout). Exposed so the kernel tests
  /// and micro-benchmarks can drive simd::KernelTable entries directly.
  [[nodiscard]] static const Elem* productRow(Elem coeff);
  [[nodiscard]] static const Elem* nibbleTables(Elem coeff);

 private:
  struct Tables {
    std::array<Elem, 512> exp;  // doubled so mul avoids a modulo
    std::array<std::uint16_t, 256> log;
    /// full[c][v] = c * v: 64 KB, the scalar mul-add/scale operand.
    std::array<std::array<Elem, 256>, 256> full;
    /// nib[c] = {lo nibble products, hi nibble products}: 8 KB, the
    /// shuffle-kernel operand (lo[i] = c*i, hi[i] = c*(i<<4)).
    std::array<std::array<Elem, 32>, 256> nib;
  };
  static const Tables tables_;
  static const std::array<Elem, 512>& exp_;
  static const std::array<std::uint16_t, 256>& log_;
};

}  // namespace robustore::coding
