#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace robustore::coding {

/// Arithmetic over GF(2^8) with the AES/Rijndael reduction polynomial
/// x^8 + x^4 + x^3 + x + 1 (0x11b). Backs the Reed–Solomon baseline the
/// paper measures in Table 5-1.
///
/// Multiplication uses log/antilog tables built at static-init time;
/// addition is XOR. All operations are branch-light and constant time with
/// respect to values (not a security property here, just speed).
class GF256 {
 public:
  using Elem = std::uint8_t;

  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

  [[nodiscard]] static Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// a / b; b must be non-zero.
  [[nodiscard]] static Elem div(Elem a, Elem b);

  /// Multiplicative inverse; a must be non-zero.
  [[nodiscard]] static Elem inv(Elem a);

  /// a^n with a in the field, n >= 0.
  [[nodiscard]] static Elem pow(Elem a, unsigned n);

  /// dst += coeff * src over the field, element-wise (the RS inner loop).
  static void mulAddInto(std::span<Elem> dst, std::span<const Elem> src,
                         Elem coeff);

  /// dst *= coeff element-wise.
  static void scaleInto(std::span<Elem> dst, Elem coeff);

 private:
  struct Tables {
    std::array<Elem, 512> exp;  // doubled so mul avoids a modulo
    std::array<std::uint16_t, 256> log;
  };
  static const Tables tables_;
  static const std::array<Elem, 512>& exp_;
  static const std::array<std::uint16_t, 256>& log_;
};

}  // namespace robustore::coding
