#include "coding/xor_kernel.hpp"

#include <cstring>

#include "common/expects.hpp"
#include "telemetry/host_profiler.hpp"

namespace robustore::coding {
namespace {

// Processes 4 x 64-bit lanes per iteration: wide enough to keep the memory
// pipeline busy, narrow enough not to spill registers (§5.2.3(4)).
constexpr std::size_t kLane = sizeof(std::uint64_t);
constexpr std::size_t kUnroll = 4;

}  // namespace

void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  const telemetry::HostProfiler::Scope profile(
      telemetry::HostScope::kXorKernel);
  ROBUSTORE_EXPECTS(dst.size() == src.size(), "xorInto size mismatch");
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  std::size_t n = dst.size();

  while (n >= kUnroll * kLane) {
    std::uint64_t dw[kUnroll];
    std::uint64_t sw[kUnroll];
    std::memcpy(dw, d, sizeof dw);
    std::memcpy(sw, s, sizeof sw);
    for (std::size_t i = 0; i < kUnroll; ++i) dw[i] ^= sw[i];
    std::memcpy(d, dw, sizeof dw);
    d += kUnroll * kLane;
    s += kUnroll * kLane;
    n -= kUnroll * kLane;
  }
  while (n >= kLane) {
    std::uint64_t dw;
    std::uint64_t sw;
    std::memcpy(&dw, d, kLane);
    std::memcpy(&sw, s, kLane);
    dw ^= sw;
    std::memcpy(d, &dw, kLane);
    d += kLane;
    s += kLane;
    n -= kLane;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] ^= s[i];
}

void xorInto2(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) {
  const telemetry::HostProfiler::Scope profile(
      telemetry::HostScope::kXorKernel);
  ROBUSTORE_EXPECTS(dst.size() == a.size() && dst.size() == b.size(),
                    "xorInto2 size mismatch");
  std::uint8_t* d = dst.data();
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  std::size_t n = dst.size();

  while (n >= kUnroll * kLane) {
    std::uint64_t dw[kUnroll];
    std::uint64_t aw[kUnroll];
    std::uint64_t bw[kUnroll];
    std::memcpy(dw, d, sizeof dw);
    std::memcpy(aw, pa, sizeof aw);
    std::memcpy(bw, pb, sizeof bw);
    for (std::size_t i = 0; i < kUnroll; ++i) dw[i] ^= aw[i] ^ bw[i];
    std::memcpy(d, dw, sizeof dw);
    d += kUnroll * kLane;
    pa += kUnroll * kLane;
    pb += kUnroll * kLane;
    n -= kUnroll * kLane;
  }
  while (n >= kLane) {
    std::uint64_t dw;
    std::uint64_t aw;
    std::uint64_t bw;
    std::memcpy(&dw, d, kLane);
    std::memcpy(&aw, pa, kLane);
    std::memcpy(&bw, pb, kLane);
    dw ^= aw ^ bw;
    std::memcpy(d, &dw, kLane);
    d += kLane;
    pa += kLane;
    pb += kLane;
    n -= kLane;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] ^= pa[i] ^ pb[i];
}

}  // namespace robustore::coding
