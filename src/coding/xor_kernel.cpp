#include "coding/xor_kernel.hpp"

#include "coding/simd_dispatch.hpp"
#include "common/expects.hpp"
#include "telemetry/host_profiler.hpp"

namespace robustore::coding {

void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  const telemetry::HostProfiler::Scope profile(
      telemetry::HostScope::kXorKernel);
  ROBUSTORE_EXPECTS(dst.size() == src.size(), "xorInto size mismatch");
  simd::active().xor_into(dst.data(), src.data(), dst.size());
}

void xorInto2(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) {
  const telemetry::HostProfiler::Scope profile(
      telemetry::HostScope::kXorKernel);
  ROBUSTORE_EXPECTS(dst.size() == a.size() && dst.size() == b.size(),
                    "xorInto2 size mismatch");
  simd::active().xor_into2(dst.data(), a.data(), b.data(), dst.size());
}

}  // namespace robustore::coding
