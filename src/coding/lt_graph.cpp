#include "coding/lt_graph.hpp"

#include <algorithm>
#include <numeric>

#include "common/expects.hpp"

namespace robustore::coding {
namespace {

struct PeelResult {
  std::vector<bool> recovered;  // per original block
  std::vector<bool> useful;     // coded blocks that resolved an original
  std::uint32_t recovered_count = 0;
};

/// Belief-propagation peel assuming *all* coded blocks are present.
PeelResult peelAll(std::uint32_t k, std::uint32_t n,
                   const std::vector<std::uint64_t>& offsets,
                   const std::vector<std::uint32_t>& edges) {
  PeelResult r;
  r.recovered.assign(k, false);
  r.useful.assign(n, false);

  // Reverse adjacency: original -> coded blocks referencing it.
  std::vector<std::uint32_t> rev_count(k, 0);
  for (const auto o : edges) ++rev_count[o];
  std::vector<std::uint64_t> rev_off(k + 1, 0);
  for (std::uint32_t i = 0; i < k; ++i) rev_off[i + 1] = rev_off[i] + rev_count[i];
  std::vector<std::uint32_t> rev(edges.size());
  {
    std::vector<std::uint64_t> cursor(rev_off.begin(), rev_off.end() - 1);
    for (std::uint32_t c = 0; c < n; ++c) {
      for (std::uint64_t e = offsets[c]; e < offsets[c + 1]; ++e) {
        rev[cursor[edges[e]]++] = c;
      }
    }
  }

  std::vector<std::uint32_t> remaining(n);
  std::vector<std::uint32_t> ripple;
  for (std::uint32_t c = 0; c < n; ++c) {
    remaining[c] = static_cast<std::uint32_t>(offsets[c + 1] - offsets[c]);
    if (remaining[c] == 1) ripple.push_back(c);
  }

  while (!ripple.empty()) {
    const std::uint32_t c = ripple.back();
    ripple.pop_back();
    if (remaining[c] != 1) continue;  // stale entry
    // Find the single unrecovered neighbor.
    std::uint32_t target = k;
    for (std::uint64_t e = offsets[c]; e < offsets[c + 1]; ++e) {
      if (!r.recovered[edges[e]]) {
        target = edges[e];
        break;
      }
    }
    if (target == k) {  // already resolved by another block
      remaining[c] = 0;
      continue;
    }
    r.recovered[target] = true;
    r.useful[c] = true;
    remaining[c] = 0;
    ++r.recovered_count;
    for (std::uint64_t e = rev_off[target]; e < rev_off[target + 1]; ++e) {
      const std::uint32_t c2 = rev[e];
      if (remaining[c2] == 0) continue;
      if (--remaining[c2] == 1) ripple.push_back(c2);
    }
  }
  return r;
}

}  // namespace

std::uint32_t PermutationStream::next() {
  if (pos_ >= perm_.size()) {
    perm_ = rng_->permutation(k_);
    pos_ = 0;
  }
  return perm_[pos_++];
}

LtGraph LtGraph::generateOnce(std::uint32_t k, std::uint32_t n,
                              const LtParams& params, Rng& rng) {
  LtGraph g;
  g.k_ = k;
  g.n_ = n;
  g.offsets_.reserve(n + 1);
  g.offsets_.push_back(0);

  const RobustSoliton dist(k, params.c, params.delta);
  PermutationStream stream(k, rng);
  // Scratch dedup bitmap, reused across coded blocks; generation stamps
  // avoid clearing it n times.
  std::vector<std::uint32_t> stamp(k, 0);
  std::uint32_t gen = 0;

  for (std::uint32_t c = 0; c < n; ++c) {
    const std::uint32_t d = std::min(dist.sample(rng), k);
    ++gen;
    std::uint32_t chosen = 0;
    while (chosen < d) {
      const std::uint32_t o =
          params.uniform_coverage
              ? stream.next()
              : static_cast<std::uint32_t>(rng.below(k));
      if (stamp[o] == gen) continue;  // duplicate within this coded block
      stamp[o] = gen;
      g.edges_.push_back(o);
      ++chosen;
    }
    g.offsets_.push_back(g.edges_.size());
  }
  return g;
}

LtGraph LtGraph::fromAdjacency(
    std::uint32_t k,
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  LtGraph g;
  g.k_ = k;
  g.n_ = static_cast<std::uint32_t>(adjacency.size());
  g.offsets_.reserve(adjacency.size() + 1);
  g.offsets_.push_back(0);
  for (const auto& neighbors : adjacency) {
    ROBUSTORE_EXPECTS(!neighbors.empty(), "coded block with no neighbors");
    for (const auto o : neighbors) {
      ROBUSTORE_EXPECTS(o < k, "neighbor index out of range");
      g.edges_.push_back(o);
    }
    g.offsets_.push_back(g.edges_.size());
  }
  return g;
}

LtGraph LtGraph::generate(std::uint32_t k, std::uint32_t n,
                          const LtParams& params, Rng& rng) {
  ROBUSTORE_EXPECTS(k >= 1 && n >= k, "LT graph requires n >= k >= 1");
  LtGraph g = generateOnce(k, n, params, rng);
  if (!params.guarantee_decodable) return g;

  for (std::uint32_t attempt = 0;
       attempt < params.max_regenerations && !g.decodableWithAll();
       ++attempt) {
    g = generateOnce(k, n, params, rng);
  }
  if (!g.decodableWithAll()) {
    g.repairDecodability();
    ROBUSTORE_EXPECTS(g.decodableWithAll(), "repair must yield decodability");
  }
  return g;
}

void LtGraph::repairDecodability() {
  const PeelResult peel = peelAll(k_, n_, offsets_, edges_);
  std::vector<std::uint32_t> missing;
  for (std::uint32_t o = 0; o < k_; ++o) {
    if (!peel.recovered[o]) missing.push_back(o);
  }
  if (missing.empty()) return;

  // Spare coded blocks (those the peel never consumed), highest degree
  // first: sacrificing them costs the least read flexibility.
  std::vector<std::uint32_t> spare;
  for (std::uint32_t c = 0; c < n_; ++c) {
    if (!peel.useful[c]) spare.push_back(c);
  }
  ROBUSTORE_EXPECTS(spare.size() >= missing.size(),
                    "n >= k guarantees enough spare blocks");
  std::sort(spare.begin(), spare.end(), [&](std::uint32_t a, std::uint32_t b) {
    return degree(a) > degree(b);
  });

  // Rebuild adjacency with the substitutions.
  std::vector<std::vector<std::uint32_t>> adj(n_);
  for (std::uint32_t c = 0; c < n_; ++c) {
    const auto nb = neighbors(c);
    adj[c].assign(nb.begin(), nb.end());
  }
  for (std::size_t i = 0; i < missing.size(); ++i) {
    adj[spare[i]] = {missing[i]};
  }
  edges_.clear();
  offsets_.assign(1, 0);
  for (std::uint32_t c = 0; c < n_; ++c) {
    edges_.insert(edges_.end(), adj[c].begin(), adj[c].end());
    offsets_.push_back(edges_.size());
  }
}

std::span<const std::uint32_t> LtGraph::neighbors(std::uint32_t coded) const {
  ROBUSTORE_EXPECTS(coded < n_, "coded block index out of range");
  return {edges_.data() + offsets_[coded],
          static_cast<std::size_t>(offsets_[coded + 1] - offsets_[coded])};
}

std::uint32_t LtGraph::degree(std::uint32_t coded) const {
  return static_cast<std::uint32_t>(offsets_[coded + 1] - offsets_[coded]);
}

double LtGraph::meanDegree() const {
  return n_ ? static_cast<double>(edges_.size()) / n_ : 0.0;
}

std::vector<std::uint32_t> LtGraph::inputDegrees() const {
  std::vector<std::uint32_t> deg(k_, 0);
  for (const auto o : edges_) ++deg[o];
  return deg;
}

bool LtGraph::decodableWithAll() const {
  return peelAll(k_, n_, offsets_, edges_).recovered_count == k_;
}

}  // namespace robustore::coding
