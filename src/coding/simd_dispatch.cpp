#include "coding/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "core/run_env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ROBUSTORE_SIMD_X86 1
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define ROBUSTORE_SIMD_NEON 1
#endif

namespace robustore::coding::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: the 4x64-bit unroll the XOR kernel always had, plus the
// full-product-row GF loops. Every wider tier's tail falls back to the
// same byte loops, so tier equality is byte-for-byte by construction.

constexpr std::size_t kLane = sizeof(std::uint64_t);
constexpr std::size_t kUnroll = 4;

void xorScalar(std::uint8_t* d, const std::uint8_t* s, std::size_t n) {
  while (n >= kUnroll * kLane) {
    std::uint64_t dw[kUnroll];
    std::uint64_t sw[kUnroll];
    std::memcpy(dw, d, sizeof dw);
    std::memcpy(sw, s, sizeof sw);
    for (std::size_t i = 0; i < kUnroll; ++i) dw[i] ^= sw[i];
    std::memcpy(d, dw, sizeof dw);
    d += kUnroll * kLane;
    s += kUnroll * kLane;
    n -= kUnroll * kLane;
  }
  while (n >= kLane) {
    std::uint64_t dw;
    std::uint64_t sw;
    std::memcpy(&dw, d, kLane);
    std::memcpy(&sw, s, kLane);
    dw ^= sw;
    std::memcpy(d, &dw, kLane);
    d += kLane;
    s += kLane;
    n -= kLane;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] ^= s[i];
}

void xor2Scalar(std::uint8_t* d, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n) {
  while (n >= kUnroll * kLane) {
    std::uint64_t dw[kUnroll];
    std::uint64_t aw[kUnroll];
    std::uint64_t bw[kUnroll];
    std::memcpy(dw, d, sizeof dw);
    std::memcpy(aw, a, sizeof aw);
    std::memcpy(bw, b, sizeof bw);
    for (std::size_t i = 0; i < kUnroll; ++i) dw[i] ^= aw[i] ^ bw[i];
    std::memcpy(d, dw, sizeof dw);
    d += kUnroll * kLane;
    a += kUnroll * kLane;
    b += kUnroll * kLane;
    n -= kUnroll * kLane;
  }
  while (n >= kLane) {
    std::uint64_t dw;
    std::uint64_t aw;
    std::uint64_t bw;
    std::memcpy(&dw, d, kLane);
    std::memcpy(&aw, a, kLane);
    std::memcpy(&bw, b, kLane);
    dw ^= aw ^ bw;
    std::memcpy(d, &dw, kLane);
    d += kLane;
    a += kLane;
    b += kLane;
    n -= kLane;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] ^= a[i] ^ b[i];
}

void gfMulAddScalar(std::uint8_t* d, const std::uint8_t* s, std::size_t n,
                    const std::uint8_t* /*nib*/, const std::uint8_t* full) {
  for (std::size_t i = 0; i < n; ++i) d[i] ^= full[s[i]];
}

void gfScaleScalar(std::uint8_t* d, std::size_t n,
                   const std::uint8_t* /*nib*/, const std::uint8_t* full) {
  for (std::size_t i = 0; i < n; ++i) d[i] = full[d[i]];
}

constexpr KernelTable kScalarTable{Level::kScalar, xorScalar, xor2Scalar,
                                   gfMulAddScalar, gfScaleScalar};

// ---------------------------------------------------------------------------
// AVX2 / AVX-512 tiers. Compiled with per-function target attributes so
// the translation unit itself needs no -mavx flags; the runtime probe
// keeps them off unsupported CPUs.

#if defined(ROBUSTORE_SIMD_X86)

__attribute__((target("avx2"))) void xorAvx2(std::uint8_t* d,
                                             const std::uint8_t* s,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i d0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i));
    const __m256i d1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i + 32));
    const __m256i s0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + i));
    const __m256i s1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_xor_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 32),
                        _mm256_xor_si256(d1, s1));
  }
  if (i + 32 <= n) {
    const __m256i d0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i));
    const __m256i s0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_xor_si256(d0, s0));
    i += 32;
  }
  xorScalar(d + i, s + i, n - i);
}

__attribute__((target("avx2"))) void xor2Avx2(std::uint8_t* d,
                                              const std::uint8_t* a,
                                              const std::uint8_t* b,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i dv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i));
    const __m256i av = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(d + i),
        _mm256_xor_si256(dv, _mm256_xor_si256(av, bv)));
  }
  xor2Scalar(d + i, a + i, b + i, n - i);
}

/// The ISA-L/Jerasure byte-shuffle multiply: product = lo_table[x & 0xf]
/// ^ hi_table[x >> 4], 32 bytes at a time via VPSHUFB on the broadcast
/// 16-byte nibble tables.
__attribute__((target("avx2"))) void gfMulAddAvx2(std::uint8_t* d,
                                                  const std::uint8_t* s,
                                                  std::size_t n,
                                                  const std::uint8_t* nib,
                                                  const std::uint8_t* full) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    const __m256i dv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(d + i),
        _mm256_xor_si256(dv, _mm256_xor_si256(pl, ph)));
  }
  gfMulAddScalar(d + i, s + i, n - i, nib, full);
}

__attribute__((target("avx2"))) void gfScaleAvx2(std::uint8_t* d,
                                                 std::size_t n,
                                                 const std::uint8_t* nib,
                                                 const std::uint8_t* full) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_xor_si256(pl, ph));
  }
  gfScaleScalar(d + i, n - i, nib, full);
}

constexpr KernelTable kAvx2Table{Level::kAvx2, xorAvx2, xor2Avx2, gfMulAddAvx2,
                                 gfScaleAvx2};

// GCC's avx512fintrin.h implements _mm512_broadcast_i32x4 on top of
// _mm512_undefined_epi32, which -Wuninitialized flags from inside the
// system header; the lanes are fully overwritten before use.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx512bw"))) void xorAvx512(
    std::uint8_t* d, const std::uint8_t* s, std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    const __m512i d0 = _mm512_loadu_si512(d + i);
    const __m512i d1 = _mm512_loadu_si512(d + i + 64);
    const __m512i s0 = _mm512_loadu_si512(s + i);
    const __m512i s1 = _mm512_loadu_si512(s + i + 64);
    _mm512_storeu_si512(d + i, _mm512_xor_si512(d0, s0));
    _mm512_storeu_si512(d + i + 64, _mm512_xor_si512(d1, s1));
  }
  if (i + 64 <= n) {
    _mm512_storeu_si512(d + i, _mm512_xor_si512(_mm512_loadu_si512(d + i),
                                                _mm512_loadu_si512(s + i)));
    i += 64;
  }
  xorScalar(d + i, s + i, n - i);
}

__attribute__((target("avx512f,avx512bw"))) void xor2Avx512(
    std::uint8_t* d, const std::uint8_t* a, const std::uint8_t* b,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i dv = _mm512_loadu_si512(d + i);
    const __m512i av = _mm512_loadu_si512(a + i);
    const __m512i bv = _mm512_loadu_si512(b + i);
    // One ternary-logic op fuses both XORs (0x96 = a ^ b ^ c).
    _mm512_storeu_si512(d + i, _mm512_ternarylogic_epi64(dv, av, bv, 0x96));
  }
  xor2Scalar(d + i, a + i, b + i, n - i);
}

__attribute__((target("avx512f,avx512bw"))) void gfMulAddAvx512(
    std::uint8_t* d, const std::uint8_t* s, std::size_t n,
    const std::uint8_t* nib, const std::uint8_t* full) {
  const __m512i lo = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m512i hi = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m512i mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(s + i);
    const __m512i pl = _mm512_shuffle_epi8(lo, _mm512_and_si512(v, mask));
    const __m512i ph = _mm512_shuffle_epi8(
        hi, _mm512_and_si512(_mm512_srli_epi64(v, 4), mask));
    const __m512i dv = _mm512_loadu_si512(d + i);
    _mm512_storeu_si512(d + i, _mm512_ternarylogic_epi64(dv, pl, ph, 0x96));
  }
  gfMulAddScalar(d + i, s + i, n - i, nib, full);
}

__attribute__((target("avx512f,avx512bw"))) void gfScaleAvx512(
    std::uint8_t* d, std::size_t n, const std::uint8_t* nib,
    const std::uint8_t* full) {
  const __m512i lo = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m512i hi = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m512i mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(d + i);
    const __m512i pl = _mm512_shuffle_epi8(lo, _mm512_and_si512(v, mask));
    const __m512i ph = _mm512_shuffle_epi8(
        hi, _mm512_and_si512(_mm512_srli_epi64(v, 4), mask));
    _mm512_storeu_si512(d + i, _mm512_xor_si512(pl, ph));
  }
  gfScaleScalar(d + i, n - i, nib, full);
}

#pragma GCC diagnostic pop

constexpr KernelTable kAvx512Table{Level::kAvx512, xorAvx512, xor2Avx512,
                                   gfMulAddAvx512, gfScaleAvx512};

#endif  // ROBUSTORE_SIMD_X86

#if defined(ROBUSTORE_SIMD_NEON)

void xorNeon(std::uint8_t* d, const std::uint8_t* s, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    uint8x16x4_t dv = vld1q_u8_x4(d + i);
    const uint8x16x4_t sv = vld1q_u8_x4(s + i);
    dv.val[0] = veorq_u8(dv.val[0], sv.val[0]);
    dv.val[1] = veorq_u8(dv.val[1], sv.val[1]);
    dv.val[2] = veorq_u8(dv.val[2], sv.val[2]);
    dv.val[3] = veorq_u8(dv.val[3], sv.val[3]);
    vst1q_u8_x4(d + i, dv);
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(d + i, veorq_u8(vld1q_u8(d + i), vld1q_u8(s + i)));
  }
  xorScalar(d + i, s + i, n - i);
}

void xor2Neon(std::uint8_t* d, const std::uint8_t* a, const std::uint8_t* b,
              std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(d + i, veorq_u8(vld1q_u8(d + i),
                             veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i))));
  }
  xor2Scalar(d + i, a + i, b + i, n - i);
}

void gfMulAddNeon(std::uint8_t* d, const std::uint8_t* s, std::size_t n,
                  const std::uint8_t* nib, const std::uint8_t* full) {
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(s + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(v, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(v, 4));
    vst1q_u8(d + i, veorq_u8(vld1q_u8(d + i), veorq_u8(pl, ph)));
  }
  gfMulAddScalar(d + i, s + i, n - i, nib, full);
}

void gfScaleNeon(std::uint8_t* d, std::size_t n, const std::uint8_t* nib,
                 const std::uint8_t* full) {
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(d + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(v, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(v, 4));
    vst1q_u8(d + i, veorq_u8(pl, ph));
  }
  gfScaleScalar(d + i, n - i, nib, full);
}

constexpr KernelTable kNeonTable{Level::kNeon, xorNeon, xor2Neon, gfMulAddNeon,
                                 gfScaleNeon};

#endif  // ROBUSTORE_SIMD_NEON

void warnOnceBadLevel(const char* raw, const char* why) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "robustore: ROBUSTORE_SIMD=\"%s\" %s; using detected level "
               "\"%s\"\n",
               raw, why, levelName(detectedLevel()));
}

const KernelTable* resolve() {
  const KernelTable* chosen = table(detectedLevel());
  if (const auto raw = core::RunEnv::simdOverride()) {
    if (*raw != "auto") {
      const auto requested = parseLevel(*raw);
      if (!requested) {
        warnOnceBadLevel(raw->c_str(),
                         "is not a dispatch level "
                         "(scalar, avx2, avx512, neon, auto)");
      } else if (const KernelTable* t = table(*requested)) {
        chosen = t;
      } else {
        warnOnceBadLevel(raw->c_str(), "is not supported on this CPU/build");
      }
    }
  }
  return chosen;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char* levelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
    case Level::kNeon: return "neon";
  }
  return "?";
}

std::optional<Level> parseLevel(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "avx512") return Level::kAvx512;
  if (name == "neon") return Level::kNeon;
  return std::nullopt;
}

Level detectedLevel() {
#if defined(ROBUSTORE_SIMD_X86)
  if (__builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512f")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kScalar;
#elif defined(ROBUSTORE_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

const KernelTable* table(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
    case Level::kAvx2:
#if defined(ROBUSTORE_SIMD_X86)
      if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
#endif
      return nullptr;
    case Level::kAvx512:
#if defined(ROBUSTORE_SIMD_X86)
      if (__builtin_cpu_supports("avx512bw") &&
          __builtin_cpu_supports("avx512f")) {
        return &kAvx512Table;
      }
#endif
      return nullptr;
    case Level::kNeon:
#if defined(ROBUSTORE_SIMD_NEON)
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolve();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Level refresh() {
  const KernelTable* t = resolve();
  g_active.store(t, std::memory_order_release);
  return t->level;
}

}  // namespace robustore::coding::simd
