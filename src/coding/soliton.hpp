#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace robustore::coding {

/// Robust Soliton degree distribution (Luby 2002), as defined in §2.2.3:
///
///   R     = c * ln(k/delta) * sqrt(k)
///   rho(1) = 1/k,  rho(i) = 1/(i(i-1))              for i = 2..k
///   tau(i) = R/(i*k)                                 for i = 1..k/R - 1
///   tau(k/R) = R * ln(R/delta) / k
///   mu(i) = (rho(i) + tau(i)) / beta,   beta = sum(rho + tau)
///
/// Larger c shifts mass to low degrees (cheaper XORs, higher reception
/// overhead); smaller delta adds a high-degree spike (better coverage,
/// more XORs) — the trade-off explored in Figures 5-1..5-3.
class RobustSoliton {
 public:
  RobustSoliton(std::uint32_t k, double c, double delta);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] double c() const { return c_; }
  [[nodiscard]] double delta() const { return delta_; }
  [[nodiscard]] double rippleR() const { return r_; }

  /// Probability of degree d (1-based; 0 outside [1, k]).
  [[nodiscard]] double pmf(std::uint32_t d) const;

  /// Expected degree under the distribution.
  [[nodiscard]] double meanDegree() const;

  /// Draws a degree in [1, k] by inverse-CDF binary search.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

 private:
  std::uint32_t k_;
  double c_;
  double delta_;
  double r_;
  std::vector<double> cdf_;  // cdf_[d-1] = P(degree <= d)
};

/// Ideal Soliton distribution: rho alone. Provided for the ablation bench
/// (it decodes poorly in practice, which motivates the robust variant).
class IdealSoliton {
 public:
  explicit IdealSoliton(std::uint32_t k);
  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] double pmf(std::uint32_t d) const;
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

 private:
  std::uint32_t k_;
};

}  // namespace robustore::coding
