#include "coding/replication.hpp"

#include "common/expects.hpp"

namespace robustore::coding {

ReplicationTracker::ReplicationTracker(std::uint32_t k) : k_(k) {
  ROBUSTORE_EXPECTS(k >= 1, "tracker needs k >= 1");
  have_.assign(k, false);
}

bool ReplicationTracker::addCopy(std::uint32_t block) {
  ROBUSTORE_EXPECTS(block < k_, "block index out of range");
  ++copies_;
  if (!have_[block]) {
    have_[block] = true;
    ++covered_;
  }
  return complete();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
RotatedReplicaLayout::onDisk(std::uint32_t disk) const {
  ROBUSTORE_EXPECTS(disk < num_disks, "disk index out of range");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t r = 0; r < num_replicas; ++r) {
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      if (diskOf(b, r) == disk) out.emplace_back(b, r);
    }
  }
  return out;
}

}  // namespace robustore::coding
