#include "coding/reed_solomon.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace robustore::coding {

ReedSolomon::ReedSolomon(std::uint32_t k, std::uint32_t n) : k_(k), n_(n) {
  ROBUSTORE_EXPECTS(k >= 1 && k <= n && n <= 256,
                    "RS requires 1 <= K <= N <= 256");
  GFMatrix v = GFMatrix::vandermonde(n, k);
  GFMatrix top(k, k);
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) top.at(i, j) = v.at(i, j);
  }
  const bool ok = top.invert();
  ROBUSTORE_EXPECTS(ok, "Vandermonde top block must be invertible");
  generator_ = v.multiply(top);
}

void ReedSolomon::encodeBlock(std::uint32_t index,
                              std::span<const std::uint8_t> data,
                              Bytes block_size,
                              std::span<std::uint8_t> out) const {
  ROBUSTORE_EXPECTS(index < n_, "coded block index out of range");
  ROBUSTORE_EXPECTS(data.size() == k_ * block_size, "bad data size");
  ROBUSTORE_EXPECTS(out.size() == block_size, "bad output size");
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  for (std::uint32_t j = 0; j < k_; ++j) {
    const GF256::Elem coeff = generator_.at(index, j);
    if (coeff == 0) continue;
    GF256::mulAddInto(out, data.subspan(j * block_size, block_size), coeff);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(
    std::span<const std::uint8_t> data, Bytes block_size) const {
  std::vector<std::uint8_t> out(n_ * block_size);
  for (std::uint32_t i = 0; i < n_; ++i) {
    encodeBlock(i, data, block_size,
                std::span(out).subspan(i * block_size, block_size));
  }
  return out;
}

std::vector<std::uint8_t> ReedSolomon::decode(
    std::span<const std::uint32_t> indices,
    std::span<const std::uint8_t> blocks, Bytes block_size) const {
  ROBUSTORE_EXPECTS(indices.size() >= k_, "RS decode needs at least K blocks");
  ROBUSTORE_EXPECTS(blocks.size() == indices.size() * block_size,
                    "blocks buffer size mismatch");
  // Use exactly the first K blocks: any K suffice by the MDS property.
  std::vector<std::uint32_t> rows(indices.begin(), indices.begin() + k_);
  GFMatrix sub = generator_.selectRows(rows);
  const bool ok = sub.invert();
  ROBUSTORE_EXPECTS(ok, "any K distinct RS rows must be invertible");

  std::vector<std::uint8_t> out(k_ * block_size, 0);
  for (std::uint32_t i = 0; i < k_; ++i) {
    auto dst = std::span(out).subspan(i * block_size, block_size);
    for (std::uint32_t j = 0; j < k_; ++j) {
      const GF256::Elem coeff = sub.at(i, j);
      if (coeff == 0) continue;
      GF256::mulAddInto(dst, blocks.subspan(j * block_size, block_size),
                        coeff);
    }
  }
  return out;
}

}  // namespace robustore::coding
