#include "coding/update.hpp"

#include <algorithm>

#include "coding/xor_kernel.hpp"
#include "common/expects.hpp"

namespace robustore::coding {

LtUpdater::LtUpdater(const LtGraph& graph) : graph_(&graph) {
  reverse_.resize(graph.k());
  for (std::uint32_t c = 0; c < graph.n(); ++c) {
    for (const auto o : graph.neighbors(c)) reverse_[o].push_back(c);
  }
}

LtUpdater::Plan LtUpdater::plan(std::uint32_t original) const {
  ROBUSTORE_EXPECTS(original < graph_->k(), "original index out of range");
  Plan p;
  p.original = original;
  p.affected = reverse_[original];
  p.fraction = static_cast<double>(p.affected.size()) / graph_->n();
  return p;
}

LtUpdater::Plan LtUpdater::plan(
    std::span<const std::uint32_t> originals) const {
  Plan p;
  p.original = originals.empty() ? 0 : originals.front();
  for (const auto o : originals) {
    ROBUSTORE_EXPECTS(o < graph_->k(), "original index out of range");
    p.affected.insert(p.affected.end(), reverse_[o].begin(),
                      reverse_[o].end());
  }
  std::sort(p.affected.begin(), p.affected.end());
  p.affected.erase(std::unique(p.affected.begin(), p.affected.end()),
                   p.affected.end());
  p.fraction = static_cast<double>(p.affected.size()) / graph_->n();
  return p;
}

void LtUpdater::applyDelta(std::span<std::uint8_t> coded_block,
                           std::span<const std::uint8_t> old_block,
                           std::span<const std::uint8_t> new_block) {
  xorInto2(coded_block, old_block, new_block);
}

double LtUpdater::meanAffected() const {
  // Sum of input degrees == total edges.
  return graph_->k() ? static_cast<double>(graph_->totalEdges()) / graph_->k()
                     : 0.0;
}

std::uint32_t LtUpdater::maxAffected() const {
  std::size_t max_deg = 0;
  for (const auto& list : reverse_) max_deg = std::max(max_deg, list.size());
  return static_cast<std::uint32_t>(max_deg);
}

}  // namespace robustore::coding
