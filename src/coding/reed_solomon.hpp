#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/matrix.hpp"
#include "common/units.hpp"

namespace robustore::coding {

/// Systematic Reed–Solomon erasure code over GF(2^8).
///
/// The *optimal* erasure code of §2.2.2 / Table 5-1: any K of the N coded
/// blocks reconstruct the original K blocks, at the cost of O(K^2)-ish
/// decode work — exactly the trade-off the paper measures to justify
/// choosing LT codes instead.
///
/// Construction: G = V * V_top^-1, where V is an N x K Vandermonde matrix.
/// Right-multiplying by an invertible matrix preserves "every K-row
/// submatrix invertible", and makes the top K rows the identity, so blocks
/// 0..K-1 are verbatim copies of the data.
class ReedSolomon {
 public:
  /// N coded blocks from K original blocks; requires K <= N <= 256.
  ReedSolomon(std::uint32_t k, std::uint32_t n);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Encodes `data` (k equal-size blocks, concatenated) into n blocks of
  /// the same size, concatenated into the returned buffer.
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> data, Bytes block_size) const;

  /// Encodes one coded block (row `index` of the generator) into `out`.
  void encodeBlock(std::uint32_t index,
                   std::span<const std::uint8_t> data, Bytes block_size,
                   std::span<std::uint8_t> out) const;

  /// Reconstructs the original k blocks from any k coded blocks.
  /// `indices[i]` names which coded block `blocks[i]` is. Returns the
  /// concatenated original data. Aborts when fewer than k blocks given.
  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::span<const std::uint32_t> indices,
      std::span<const std::uint8_t> blocks, Bytes block_size) const;

 private:
  std::uint32_t k_;
  std::uint32_t n_;
  GFMatrix generator_;  // n x k, top k x k == identity
};

}  // namespace robustore::coding
