#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/lt_graph.hpp"
#include "common/units.hpp"

namespace robustore::coding {

/// Update-access support (§4.3.4). With a near-optimal code, changing one
/// original block only dirties the coded blocks adjacent to it in the
/// coding graph — about input-degree many, i.e. ~20 of 4096 (≈0.5%) for
/// the paper's K=1024 configuration. The client examines the graph,
/// regenerates exactly those blocks, pushes them to (possibly new) disks,
/// and retires the stale versions.
class LtUpdater {
 public:
  /// Precomputes the original -> coded reverse adjacency.
  explicit LtUpdater(const LtGraph& graph);

  struct Plan {
    std::uint32_t original = 0;
    /// Coded blocks that must be rewritten, ascending.
    std::vector<std::uint32_t> affected;
    /// Fraction of total coded data touched.
    double fraction = 0.0;
  };

  /// Coded blocks dirtied by rewriting `original`.
  [[nodiscard]] Plan plan(std::uint32_t original) const;

  /// Union plan for a multi-block update.
  [[nodiscard]] Plan plan(std::span<const std::uint32_t> originals) const;

  /// XOR-patches one affected coded block in place:
  ///   coded' = coded XOR old_block XOR new_block.
  /// Equivalent to re-encoding but touches only this block's bytes.
  static void applyDelta(std::span<std::uint8_t> coded_block,
                         std::span<const std::uint8_t> old_block,
                         std::span<const std::uint8_t> new_block);

  /// Mean/max number of coded blocks dirtied per single-block update —
  /// the §4.3.4 cost statistic.
  [[nodiscard]] double meanAffected() const;
  [[nodiscard]] std::uint32_t maxAffected() const;

 private:
  const LtGraph* graph_;
  std::vector<std::vector<std::uint32_t>> reverse_;
};

}  // namespace robustore::coding
