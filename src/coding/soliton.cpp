#include "coding/soliton.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace robustore::coding {
namespace {

double rho(std::uint32_t k, std::uint32_t i) {
  if (i == 1) return 1.0 / k;
  return 1.0 / (static_cast<double>(i) * (i - 1.0));
}

}  // namespace

RobustSoliton::RobustSoliton(std::uint32_t k, double c, double delta)
    : k_(k), c_(c), delta_(delta) {
  ROBUSTORE_EXPECTS(k >= 1, "soliton needs k >= 1");
  ROBUSTORE_EXPECTS(c > 0 && delta > 0 && delta < 1,
                    "soliton needs c > 0 and delta in (0,1)");
  r_ = c * std::log(static_cast<double>(k) / delta) * std::sqrt(k);
  // Spike position k/R, clamped into the valid degree range [1, k].
  const auto spike = static_cast<std::uint32_t>(std::clamp(
      std::floor(static_cast<double>(k) / std::max(r_, 1e-12)), 1.0,
      static_cast<double>(k)));

  std::vector<double> weight(k + 1, 0.0);
  for (std::uint32_t i = 1; i <= k; ++i) weight[i] = rho(k, i);
  for (std::uint32_t i = 1; i < spike; ++i) {
    weight[i] += r_ / (static_cast<double>(i) * k);
  }
  weight[spike] += r_ * std::log(r_ / delta) / k;

  double beta = 0.0;
  for (std::uint32_t i = 1; i <= k; ++i) beta += weight[i];
  ROBUSTORE_EXPECTS(beta > 0, "degenerate soliton normalisation");

  cdf_.resize(k);
  double acc = 0.0;
  for (std::uint32_t i = 1; i <= k; ++i) {
    acc += weight[i] / beta;
    cdf_[i - 1] = acc;
  }
  cdf_.back() = 1.0;  // absorb floating-point residue
}

double RobustSoliton::pmf(std::uint32_t d) const {
  if (d < 1 || d > k_) return 0.0;
  return d == 1 ? cdf_[0] : cdf_[d - 1] - cdf_[d - 2];
}

double RobustSoliton::meanDegree() const {
  double mean = 0.0;
  for (std::uint32_t d = 1; d <= k_; ++d) mean += d * pmf(d);
  return mean;
}

std::uint32_t RobustSoliton::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
}

IdealSoliton::IdealSoliton(std::uint32_t k) : k_(k) {
  ROBUSTORE_EXPECTS(k >= 1, "soliton needs k >= 1");
}

double IdealSoliton::pmf(std::uint32_t d) const {
  if (d < 1 || d > k_) return 0.0;
  return rho(k_, d);
}

std::uint32_t IdealSoliton::sample(Rng& rng) const {
  // Inverse CDF in closed form: P(degree <= d) = 1/k + (1 - 1/d) for d >= 2,
  // i.e. u in (1/k + 1 - 1/(d-1), 1/k + 1 - 1/d] maps to d.
  const double u = rng.uniform();
  if (u < 1.0 / k_) return 1;
  const double v = u - 1.0 / k_;  // in [0, 1 - 1/k)
  const auto d = static_cast<std::uint32_t>(std::ceil(1.0 / (1.0 - v)));
  return std::clamp<std::uint32_t>(d, 2, k_);
}

}  // namespace robustore::coding
