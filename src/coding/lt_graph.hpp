#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/soliton.hpp"
#include "common/rng.hpp"

namespace robustore::coding {

/// Degree-distribution / neighbor-selection options for graph generation.
struct LtParams {
  /// Robust-soliton C parameter (paper simulation default: 1.0).
  double c = 1.0;
  /// Robust-soliton delta parameter (paper simulation default: 0.5).
  double delta = 0.5;
  /// §5.2.3(2): cover input blocks uniformly via pseudo-random permutation
  /// streams so input degrees differ by at most one.
  bool uniform_coverage = true;
  /// §5.2.3(1): guarantee that receiving all N coded blocks decodes. The
  /// graph is regenerated up to `max_regenerations` times and then, if
  /// still stuck, repaired by substituting degree-1 blocks for spare
  /// (unused) coded blocks.
  bool guarantee_decodable = true;
  std::uint32_t max_regenerations = 3;
};

/// The bipartite LT coding graph: which original blocks each coded block
/// XORs together. Immutable after generation; shared by encoder, decoder
/// and the storage simulator (which runs the decoder in ID-only mode).
class LtGraph {
 public:
  /// Empty graph (k = n = 0); assign from generate()/fromAdjacency().
  LtGraph() = default;

  /// Generates a graph with `n` coded blocks over `k` originals.
  /// Deterministic given `rng` state.
  static LtGraph generate(std::uint32_t k, std::uint32_t n,
                          const LtParams& params, Rng& rng);

  /// Builds a graph from an explicit adjacency list (coded block ->
  /// original neighbors). Used by codes that compose LT with other
  /// structures (Raptor pre-code constraints, hand-crafted tests).
  static LtGraph fromAdjacency(
      std::uint32_t k,
      const std::vector<std::vector<std::uint32_t>>& adjacency);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Original-block neighbors of coded block `c` (sorted not guaranteed).
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t coded) const;

  [[nodiscard]] std::uint32_t degree(std::uint32_t coded) const;
  [[nodiscard]] std::uint64_t totalEdges() const { return edges_.size(); }

  /// Mean coded-block degree (Fig 5-2 reports K * this for decode cost).
  [[nodiscard]] double meanDegree() const;

  /// Degree of each *original* block (used by the uniform-coverage tests
  /// and by the update-access cost analysis in §4.3.4).
  [[nodiscard]] std::vector<std::uint32_t> inputDegrees() const;

  /// True when receiving every coded block recovers all originals.
  [[nodiscard]] bool decodableWithAll() const;

 private:
  static LtGraph generateOnce(std::uint32_t k, std::uint32_t n,
                              const LtParams& params, Rng& rng);
  /// Replaces spare coded blocks with degree-1 copies of the blocks that a
  /// full-reception peel failed to recover. See DESIGN.md §3.
  void repairDecodability();

  std::uint32_t k_ = 0;
  std::uint32_t n_ = 0;
  // CSR adjacency: coded block c's neighbors are
  // edges_[offsets_[c] .. offsets_[c+1]).
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> edges_;
};

/// Draws values from successive random permutations of [0, k), so that any
/// window of k consecutive draws covers every value exactly once — the
/// pseudo-random selection technique of §5.2.3(2).
class PermutationStream {
 public:
  PermutationStream(std::uint32_t k, Rng& rng) : k_(k), rng_(&rng) {}

  [[nodiscard]] std::uint32_t next();

 private:
  std::uint32_t k_;
  Rng* rng_;
  std::vector<std::uint32_t> perm_;
  std::uint32_t pos_ = 0;
};

}  // namespace robustore::coding
