#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace robustore::coding::simd {

/// Runtime-selected instruction-set tier for the coding kernels. Tiers
/// are probed at first use (ROADMAP item 3): the widest tier the CPU
/// supports wins unless ROBUSTORE_SIMD forces a narrower one. Every tier
/// computes bit-identical results — XOR and GF(2^8) arithmetic are exact
/// — so the choice affects bytes/cycle only, never any BENCH artifact.
enum class Level : std::uint8_t {
  kScalar = 0,  // portable 64-bit-lane fallback, always available
  kAvx2,        // 32-byte lanes + PSHUFB nibble-table GF multiply
  kAvx512,      // 64-byte lanes (needs AVX-512BW for byte shuffles)
  kNeon,        // 16-byte lanes + TBL nibble-table GF multiply (aarch64)
};

[[nodiscard]] const char* levelName(Level level);

/// Parses a ROBUSTORE_SIMD value ("scalar", "avx2", "avx512", "neon";
/// case-sensitive). nullopt for anything else, including "auto".
[[nodiscard]] std::optional<Level> parseLevel(std::string_view name);

/// One tier's kernel set. The GF kernels receive both per-coefficient
/// table forms so each tier picks what it needs: `nib` is the 32-byte
/// {low-nibble, high-nibble} product table pair the byte-shuffle tiers
/// consume, `full` the 256-byte full product row the scalar tier (and
/// every tail loop) indexes. Both are owned by GF256 and valid for the
/// program's lifetime.
struct KernelTable {
  Level level;
  void (*xor_into)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
  void (*xor_into2)(std::uint8_t* dst, const std::uint8_t* a,
                    const std::uint8_t* b, std::size_t n);
  /// dst[i] ^= coeff * src[i] over GF(2^8); coeff is baked into the tables.
  void (*gf_mul_add)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n, const std::uint8_t* nib,
                     const std::uint8_t* full);
  /// dst[i] = coeff * dst[i] over GF(2^8).
  void (*gf_scale)(std::uint8_t* dst, std::size_t n, const std::uint8_t* nib,
                   const std::uint8_t* full);
};

/// Widest tier this CPU supports (compile-time ISA availability AND a
/// runtime CPUID/feature probe).
[[nodiscard]] Level detectedLevel();

/// The tier's kernels, or nullptr when this build/CPU cannot run it.
/// Scalar is never null. Tests and the kernel micro-benchmarks use this
/// to pin every supported tier against the scalar reference.
[[nodiscard]] const KernelTable* table(Level level);

/// The resolved kernel set every coding hot path calls through: the
/// detected tier, narrowed by ROBUSTORE_SIMD when set (unsupported or
/// unparseable requests warn once and fall back to detection). Resolved
/// once, then cached; see refresh().
[[nodiscard]] const KernelTable& active();

/// Re-reads ROBUSTORE_SIMD and re-resolves the cached table (tests
/// toggle the knob mid-process; production code never needs this).
/// Returns the now-active level.
Level refresh();

}  // namespace robustore::coding::simd
