#pragma once

#include <cstdint>
#include <vector>

namespace robustore::coding {

/// Completion tracker for plain-text replicated reads (RAID-0 / RRAID-S /
/// RRAID-A in §6.2.1): an access completes once at least one copy of every
/// original block has arrived. This is the replication counterpart of
/// LtDecoder — same interface shape so schemes can treat them uniformly.
class ReplicationTracker {
 public:
  explicit ReplicationTracker(std::uint32_t k);

  /// Feeds a received copy of original block `block`. Returns complete().
  bool addCopy(std::uint32_t block);

  [[nodiscard]] bool complete() const { return covered_ == k_; }
  [[nodiscard]] std::uint32_t coveredCount() const { return covered_; }
  [[nodiscard]] bool isCovered(std::uint32_t block) const {
    return have_[block];
  }
  /// Copies accepted so far (duplicates included): the numerator of the
  /// replicated-scheme reception overhead.
  [[nodiscard]] std::uint32_t copiesReceived() const { return copies_; }
  /// Duplicate copies received (wasted I/O under speculative access).
  [[nodiscard]] std::uint32_t duplicates() const { return copies_ - covered_; }

 private:
  std::uint32_t k_;
  std::uint32_t covered_ = 0;
  std::uint32_t copies_ = 0;
  std::vector<bool> have_;
};

/// Rotated replica placement used by RRAID-S / RRAID-A (§6.2.1): copy `r`
/// of block `i` lives on disk (i + r) mod num_disks. The per-disk stored
/// order interleaves replicas in block order, matching Figure 6-1(d).
struct RotatedReplicaLayout {
  std::uint32_t num_blocks = 0;
  std::uint32_t num_replicas = 0;  // total copies per block (>= 1)
  std::uint32_t num_disks = 0;

  [[nodiscard]] std::uint32_t diskOf(std::uint32_t block,
                                     std::uint32_t replica) const {
    return (block + replica) % num_disks;
  }

  /// All (block, replica) pairs stored on `disk`, in stored order:
  /// replica-major ("each replica starting one disk rotated over",
  /// Figure 6-1d) — the disk's replica-0 slice first, then replica 1, and
  /// so on, each slice in ascending block order. A speculative reader
  /// therefore streams the disk's unique share before its redundant
  /// copies.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> onDisk(
      std::uint32_t disk) const;
};

}  // namespace robustore::coding
