#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace robustore::coding {

/// dst ^= src, element-wise. Sizes must match.
///
/// This is the inner loop of LT encoding and decoding; §5.2.3(4) of the
/// paper calls for word-wide, register-frugal XOR. Dispatches through
/// coding::simd to the widest kernel the CPU supports (AVX-512/AVX2/NEON
/// wide-register paths, 4x64-bit scalar unroll otherwise); every tier is
/// bit-identical and handles misaligned heads/tails byte-wise.
void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// dst ^= a ^ b in a single pass (saves one full traversal of dst when
/// combining two sources, a common case in batched lazy decoding).
void xorInto2(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b);

}  // namespace robustore::coding
