#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace robustore::coding {

/// dst ^= src, element-wise. Sizes must match.
///
/// This is the inner loop of LT encoding and decoding; §5.2.3(4) of the
/// paper calls for word-wide, register-frugal XOR. The implementation works
/// on 64-bit lanes with an unrolled body (the compiler further vectorises
/// it), falling back to bytes for unaligned tails.
void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// dst ^= a ^ b in a single pass (saves one full traversal of dst when
/// combining two sources, a common case in batched lazy decoding).
void xorInto2(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b);

}  // namespace robustore::coding
