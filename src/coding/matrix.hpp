#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/gf256.hpp"

namespace robustore::coding {

/// Dense matrix over GF(256). Small (K <= a few hundred): Reed–Solomon code
/// construction and decoding only; row-major storage.
class GFMatrix {
 public:
  GFMatrix() = default;
  GFMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] static GFMatrix identity(std::size_t n);

  /// Vandermonde matrix: entry (i, j) = alpha_i^j where alpha_i enumerates
  /// distinct field elements. Any square submatrix formed by choosing rows
  /// is invertible, which is exactly the MDS property RS relies on.
  [[nodiscard]] static GFMatrix vandermonde(std::size_t rows,
                                            std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] GF256::Elem& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] GF256::Elem at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<const GF256::Elem> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<GF256::Elem> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] GFMatrix multiply(const GFMatrix& rhs) const;

  /// Gauss–Jordan inverse. Returns false (leaving *this unspecified) when
  /// the matrix is singular.
  [[nodiscard]] bool invert();

  /// Extracts the listed rows into a new matrix.
  [[nodiscard]] GFMatrix selectRows(std::span<const std::uint32_t> idx) const;

  [[nodiscard]] bool operator==(const GFMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<GF256::Elem> data_;
};

}  // namespace robustore::coding
