#include "coding/lt_codec.hpp"

#include <algorithm>
#include <utility>

#include "coding/xor_kernel.hpp"
#include "common/expects.hpp"
#include "telemetry/host_profiler.hpp"

namespace robustore::coding {

LtEncoder::LtEncoder(const LtGraph& graph, std::span<const std::uint8_t> data,
                     Bytes block_size)
    : graph_(&graph), data_(data), block_size_(block_size) {
  ROBUSTORE_EXPECTS(block_size > 0, "encoder needs a positive block size");
  ROBUSTORE_EXPECTS(data.size() == graph.k() * block_size,
                    "data must be k blocks of block_size bytes");
}

void LtEncoder::encodeBlock(std::uint32_t index,
                            std::span<std::uint8_t> out) const {
  ROBUSTORE_EXPECTS(out.size() == block_size_, "bad encode output size");
  const auto nb = graph_->neighbors(index);
  ROBUSTORE_EXPECTS(!nb.empty(), "coded block with zero degree");
  const auto block = [&](std::uint32_t o) {
    return data_.subspan(o * block_size_, block_size_);
  };
  std::copy_n(block(nb[0]).data(), block_size_, out.data());
  std::size_t i = 1;
  for (; i + 1 < nb.size(); i += 2) {
    xorInto2(out, block(nb[i]), block(nb[i + 1]));
  }
  if (i < nb.size()) xorInto(out, block(nb[i]));
}

std::vector<std::uint8_t> LtEncoder::encodeAll() const {
  std::vector<std::uint8_t> out(graph_->n() * block_size_);
  for (std::uint32_t c = 0; c < graph_->n(); ++c) {
    encodeBlock(c, std::span(out).subspan(c * block_size_, block_size_));
  }
  return out;
}

LtDecoder::LtDecoder(const LtGraph& graph, Bytes block_size,
                     std::uint32_t watch_prefix)
    : graph_(&graph), block_size_(block_size) {
  const std::uint32_t k = graph.k();
  watch_prefix_ = std::min(watch_prefix, k);
  const std::uint32_t n = graph.n();
  if (block_size_ > 0) {
    data_.resize(static_cast<std::size_t>(k) * block_size_);
    payloads_.resize(n);
  }
  received_.assign(n, false);
  recovered_.assign(k, false);
  remaining_.assign(n, 0);

  // Reverse adjacency (original -> coded), CSR.
  std::vector<std::uint32_t> count(k, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (const auto o : graph.neighbors(c)) ++count[o];
  }
  rev_offsets_.assign(k + 1, 0);
  for (std::uint32_t o = 0; o < k; ++o) {
    rev_offsets_[o + 1] = rev_offsets_[o] + count[o];
  }
  rev_edges_.resize(graph.totalEdges());
  std::vector<std::uint64_t> cursor(rev_offsets_.begin(),
                                    rev_offsets_.end() - 1);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (const auto o : graph.neighbors(c)) rev_edges_[cursor[o]++] = c;
  }
}

bool LtDecoder::addSymbol(std::uint32_t coded_id,
                          std::span<const std::uint8_t> payload) {
  return ingest(coded_id, payload, nullptr);
}

bool LtDecoder::addSymbol(std::uint32_t coded_id,
                          std::vector<std::uint8_t>&& payload) {
  return ingest(coded_id, payload, &payload);
}

bool LtDecoder::ingest(std::uint32_t coded_id,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>* owned) {
  const telemetry::HostProfiler::Scope profile(
      telemetry::HostScope::kDecode);
  ROBUSTORE_EXPECTS(coded_id < graph_->n(), "coded id out of range");
  if (received_[coded_id] || complete()) return complete();
  if (block_size_ > 0) {
    ROBUSTORE_EXPECTS(payload.size() == block_size_,
                      "payload size must equal block size");
  }
  received_[coded_id] = true;
  ++symbols_used_;

  std::uint32_t rem = 0;
  for (const auto o : graph_->neighbors(coded_id)) {
    if (!recovered_[o]) ++rem;
  }
  remaining_[coded_id] = rem;
  if (rem == 0) return complete();
  if (rem == 1) {
    // Streaming fast path: the arrival resolves an original right now, so
    // peel straight from the caller's buffer — nothing is copied into or
    // allocated for the payload store.
    resolve(coded_id, payload);
    drainRipple();
    return complete();
  }
  // The block has to wait for more arrivals; only now does buffering
  // happen (adopting the caller's vector when it offered one).
  if (block_size_ > 0) {
    if (owned != nullptr) {
      payloads_[coded_id] = std::move(*owned);
    } else {
      payloads_[coded_id].assign(payload.begin(), payload.end());
    }
  }
  return complete();
}

void LtDecoder::drainRipple() {
  while (!ripple_.empty() && !complete()) {
    const std::uint32_t c = ripple_.back();
    ripple_.pop_back();
    if (remaining_[c] != 1) continue;
    resolve(c, block_size_ > 0 ? std::span<const std::uint8_t>(payloads_[c])
                               : std::span<const std::uint8_t>{});
    if (block_size_ > 0) {
      payloads_[c].clear();
      payloads_[c].shrink_to_fit();
    }
  }
}

void LtDecoder::resolve(std::uint32_t coded_id,
                        std::span<const std::uint8_t> payload) {
  const auto nb = graph_->neighbors(coded_id);
  std::uint32_t target = graph_->k();
  for (const auto o : nb) {
    if (!recovered_[o]) {
      target = o;
      break;
    }
  }
  ROBUSTORE_EXPECTS(target < graph_->k(), "resolve without an open neighbor");

  if (block_size_ > 0) {
    // Lazy XOR: combine the payload with every *recovered* neighbor now,
    // folding neighbor pairs in fused two-source passes over the target.
    auto dst = std::span(data_).subspan(
        static_cast<std::size_t>(target) * block_size_, block_size_);
    std::copy(payload.begin(), payload.end(), dst.begin());
    const auto block = [&](std::uint32_t o) {
      return std::span<const std::uint8_t>(data_).subspan(
          static_cast<std::size_t>(o) * block_size_, block_size_);
    };
    std::uint32_t pending = graph_->k();
    for (const auto o : nb) {
      if (o == target) continue;
      if (pending == graph_->k()) {
        pending = o;
        continue;
      }
      xorInto2(dst, block(pending), block(o));
      xor_ops_ += 2;
      pending = graph_->k();
    }
    if (pending != graph_->k()) {
      xorInto(dst, block(pending));
      ++xor_ops_;
    }
  } else {
    xor_ops_ += nb.size() - 1;
  }
  edges_used_ += nb.size();
  remaining_[coded_id] = 0;
  recovered_[target] = true;
  ++recovered_count_;
  if (target < watch_prefix_) ++recovered_prefix_count_;

  for (std::uint64_t e = rev_offsets_[target]; e < rev_offsets_[target + 1];
       ++e) {
    const std::uint32_t c2 = rev_edges_[e];
    if (!received_[c2] || remaining_[c2] == 0) continue;
    if (--remaining_[c2] == 1) ripple_.push_back(c2);
  }
}

std::vector<std::uint8_t> LtDecoder::takeData() {
  ROBUSTORE_EXPECTS(complete(), "takeData before decoding completed");
  ROBUSTORE_EXPECTS(block_size_ > 0, "takeData in ID-only mode");
  return std::move(data_);
}

std::vector<std::uint8_t> LtDecoder::takePrefixData() {
  ROBUSTORE_EXPECTS(prefixComplete(),
                    "takePrefixData before the prefix was recovered");
  ROBUSTORE_EXPECTS(block_size_ > 0, "takePrefixData in ID-only mode");
  data_.resize(static_cast<std::size_t>(watch_prefix_) * block_size_);
  return std::move(data_);
}

}  // namespace robustore::coding
