#include "coding/matrix.hpp"

#include <utility>

#include "common/expects.hpp"

namespace robustore::coding {

GFMatrix GFMatrix::identity(std::size_t n) {
  GFMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GFMatrix GFMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  ROBUSTORE_EXPECTS(rows <= 256, "Vandermonde needs distinct field points");
  GFMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto alpha = static_cast<GF256::Elem>(i);
    GF256::Elem p = 1;
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = p;
      p = GF256::mul(p, alpha);
    }
  }
  // Row 0 is alpha=0: [1, 0, 0, ...]; still fine (it is e_0).
  return m;
}

GFMatrix GFMatrix::multiply(const GFMatrix& rhs) const {
  ROBUSTORE_EXPECTS(cols_ == rhs.rows_, "matrix multiply shape mismatch");
  GFMatrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const GF256::Elem a = at(i, k);
      if (a == 0) continue;
      GF256::mulAddInto(out.row(i), rhs.row(k), a);
    }
  }
  return out;
}

bool GFMatrix::invert() {
  ROBUSTORE_EXPECTS(rows_ == cols_, "inverse of non-square matrix");
  const std::size_t n = rows_;
  GFMatrix aug(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.at(i, j) = at(i, j);
    aug.at(i, n + i) = 1;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search: any non-zero element works over a field.
    std::size_t pivot = col;
    while (pivot < n && aug.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < 2 * n; ++j) {
        std::swap(aug.at(col, j), aug.at(pivot, j));
      }
    }
    const GF256::Elem inv_p = GF256::inv(aug.at(col, col));
    GF256::scaleInto(aug.row(col), inv_p);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const GF256::Elem f = aug.at(r, col);
      if (f != 0) GF256::mulAddInto(aug.row(r), aug.row(col), f);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) at(i, j) = aug.at(i, n + j);
  }
  return true;
}

GFMatrix GFMatrix::selectRows(std::span<const std::uint32_t> idx) const {
  GFMatrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ROBUSTORE_EXPECTS(idx[i] < rows_, "row selection out of range");
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(idx[i], j);
  }
  return out;
}

}  // namespace robustore::coding
