#include "coding/matrix.hpp"

#include <algorithm>
#include <utility>

#include "common/expects.hpp"

namespace robustore::coding {

GFMatrix GFMatrix::identity(std::size_t n) {
  GFMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GFMatrix GFMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  ROBUSTORE_EXPECTS(rows <= 256, "Vandermonde needs distinct field points");
  GFMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto alpha = static_cast<GF256::Elem>(i);
    GF256::Elem p = 1;
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = p;
      p = GF256::mul(p, alpha);
    }
  }
  // Row 0 is alpha=0: [1, 0, 0, ...]; still fine (it is e_0).
  return m;
}

GFMatrix GFMatrix::multiply(const GFMatrix& rhs) const {
  ROBUSTORE_EXPECTS(cols_ == rhs.rows_, "matrix multiply shape mismatch");
  GFMatrix out(rows_, rhs.cols_);
  // Cache-blocked over the inner dimension: the rhs panel touched by one
  // k-band stays resident across successive output rows instead of
  // streaming the whole rhs through cache once per row. XOR accumulation
  // commutes exactly, so the band order changes nothing.
  const std::size_t band = std::max<std::size_t>(
      1, std::size_t{32 * 1024} / std::max<std::size_t>(1, rhs.cols_));
  for (std::size_t k0 = 0; k0 < cols_; k0 += band) {
    const std::size_t k1 = std::min(cols_, k0 + band);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = k0; k < k1; ++k) {
        const GF256::Elem a = at(i, k);
        if (a == 0) continue;
        GF256::mulAddInto(out.row(i), rhs.row(k), a);
      }
    }
  }
  return out;
}

bool GFMatrix::invert() {
  ROBUSTORE_EXPECTS(rows_ == cols_, "inverse of non-square matrix");
  const std::size_t n = rows_;
  GFMatrix aug(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.at(i, j) = at(i, j);
    aug.at(i, n + i) = 1;
  }
  // Active-window elimination. Left of the pivot column every column is
  // already a unit vector (Gauss–Jordan invariant), so the pivot row is
  // zero there and row updates may start at `col`. On the right half a
  // row's support only ever grows by union with rows it is combined
  // with; `right_width[r]` tracks 1 + the highest identity column row r
  // can have touched, so updates stop there too. Each row operation then
  // runs over one contiguous span [col, n + width) — roughly half the
  // naive 2n — which both shrinks the work and keeps the hot span in
  // cache as the elimination sweeps.
  std::vector<std::uint32_t> right_width(n);
  for (std::size_t r = 0; r < n; ++r) {
    right_width[r] = static_cast<std::uint32_t>(r) + 1;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search: any non-zero element works over a field.
    std::size_t pivot = col;
    while (pivot < n && aug.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = col; j < 2 * n; ++j) {
        std::swap(aug.at(col, j), aug.at(pivot, j));
      }
      std::swap(right_width[col], right_width[pivot]);
    }
    const std::size_t width = (n - col) + right_width[col];
    const GF256::Elem inv_p = GF256::inv(aug.at(col, col));
    GF256::scaleInto(aug.row(col).subspan(col, width), inv_p);
    const auto src = std::span<const GF256::Elem>(aug.row(col))
                         .subspan(col, width);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const GF256::Elem f = aug.at(r, col);
      if (f == 0) continue;
      right_width[r] = std::max(right_width[r], right_width[col]);
      GF256::mulAddInto(aug.row(r).subspan(col, width), src, f);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) at(i, j) = aug.at(i, n + j);
  }
  return true;
}

GFMatrix GFMatrix::selectRows(std::span<const std::uint32_t> idx) const {
  GFMatrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ROBUSTORE_EXPECTS(idx[i] < rows_, "row selection out of range");
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(idx[i], j);
  }
  return out;
}

}  // namespace robustore::coding
