#include "coding/gf256.hpp"

#include "coding/simd_dispatch.hpp"
#include "common/expects.hpp"

namespace robustore::coding {
namespace {

GF256::Elem slowMul(GF256::Elem a, GF256::Elem b) {
  // Russian-peasant multiplication with modular reduction; only used to
  // build the tables once.
  std::uint16_t result = 0;
  std::uint16_t aa = a;
  std::uint16_t bb = b;
  while (bb != 0) {
    if (bb & 1) result ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11b;
    bb >>= 1;
  }
  return static_cast<GF256::Elem>(result);
}

}  // namespace

const GF256::Tables GF256::tables_ = [] {
  Tables t{};
  // Generator 3 is primitive for 0x11b, so successive powers enumerate all
  // 255 non-zero elements.
  GF256::Elem x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp[i] = x;
    t.log[x] = static_cast<std::uint16_t>(i);
    x = slowMul(x, 3);
  }
  for (unsigned i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // never consulted: mul() short-circuits zero operands

  // Product tables, hoisted out of the hot paths: GFMatrix::invert used
  // to rebuild a 256-entry row inside its O(n^2) inner loop. 72 KB once,
  // at static init, covers every coefficient forever.
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned v = 0; v < 256; ++v) {
      t.full[c][v] = slowMul(static_cast<GF256::Elem>(c),
                             static_cast<GF256::Elem>(v));
    }
    for (unsigned i = 0; i < 16; ++i) {
      t.nib[c][i] = t.full[c][i];
      t.nib[c][16 + i] = t.full[c][i << 4];
    }
  }
  return t;
}();

const std::array<GF256::Elem, 512>& GF256::exp_ = GF256::tables_.exp;
const std::array<std::uint16_t, 256>& GF256::log_ = GF256::tables_.log;

GF256::Elem GF256::div(Elem a, Elem b) {
  ROBUSTORE_EXPECTS(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

GF256::Elem GF256::inv(Elem a) {
  ROBUSTORE_EXPECTS(a != 0, "inverse of zero in GF(256)");
  return exp_[255 - log_[a]];
}

GF256::Elem GF256::pow(Elem a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  // Reduce the exponent mod the group order first: log * (n % 255) fits
  // in 16 bits, so no wider intermediate can overflow.
  return exp_[(static_cast<unsigned>(log_[a]) * (n % 255u)) % 255u];
}

void GF256::mulAddInto(std::span<Elem> dst, std::span<const Elem> src,
                       Elem coeff) {
  ROBUSTORE_EXPECTS(dst.size() == src.size(), "mulAddInto size mismatch");
  if (coeff == 0) return;
  const auto& k = simd::active();
  if (coeff == 1) {
    k.xor_into(dst.data(), src.data(), dst.size());
    return;
  }
  k.gf_mul_add(dst.data(), src.data(), dst.size(), tables_.nib[coeff].data(),
               tables_.full[coeff].data());
}

void GF256::scaleInto(std::span<Elem> dst, Elem coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (auto& v : dst) v = 0;
    return;
  }
  simd::active().gf_scale(dst.data(), dst.size(), tables_.nib[coeff].data(),
                          tables_.full[coeff].data());
}

const GF256::Elem* GF256::productRow(Elem coeff) {
  return tables_.full[coeff].data();
}

const GF256::Elem* GF256::nibbleTables(Elem coeff) {
  return tables_.nib[coeff].data();
}

}  // namespace robustore::coding
