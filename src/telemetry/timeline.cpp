#include "telemetry/timeline.hpp"

#include <cmath>
#include <cstdio>

#include "telemetry/registry.hpp"

namespace robustore::telemetry {
namespace {

/// Non-finite gauge values serialize as fixed tokens: printf's "nan"
/// carries an implementation-defined sign ("-nan" on some libcs — a
/// nondeterministic export byte), and "inf" is not a JSON token at all.
/// CSV gets the bare tokens; JSON quotes them so the document stays
/// parseable.
const char* nonFiniteToken(double value) {
  if (std::isnan(value)) return "NaN";
  return value > 0 ? "Inf" : "-Inf";
}

void appendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += nonFiniteToken(value);
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

void appendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += '"';
    out += nonFiniteToken(value);
    out += '"';
    return;
  }
  appendNumber(out, value);
}

}  // namespace

Timeline::Series& Timeline::series(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    return *it->second;
  }
  Series& s = series_.emplace_back();
  s.name = name;
  index_.emplace(s.name, &s);
  return s;
}

std::size_t Timeline::totalPoints() const {
  std::size_t total = 0;
  for (const Series& s : series_) total += s.size();
  return total;
}

std::string Timeline::toCsv() const {
  std::string out = "t_s,series,value\n";
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      appendNumber(out, s.t[i]);
      out += ',';
      out += s.name;
      out += ',';
      appendNumber(out, s.v[i]);
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::toJson(SimTime sample_dt) const {
  std::string out = "{";
  if (sample_dt > 0.0) {
    out += "\"sample_dt_s\":";
    appendNumber(out, sample_dt);
    out += ",";
  }
  out += "\"series\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += s.name;  // series names are dotted identifiers, no escaping needed
    out += "\",\"points\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i != 0) out += ",";
      out += '[';
      appendJsonNumber(out, s.t[i]);
      out += ',';
      appendJsonNumber(out, s.v[i]);
      out += ']';
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

void Timeline::clear() {
  series_.clear();
  index_.clear();
}

void snapshotToRegistry(const Timeline& timeline, MetricRegistry& registry) {
  registry.counter("telemetry.series").increment(timeline.numSeries());
  registry.counter("telemetry.samples").increment(timeline.totalPoints());
  for (const auto& s : timeline.allSeries()) {
    if (s.size() == 0) continue;
    registry.gauge(s.name).set(s.last());
    Histogram& h = registry.histogram(s.name);
    for (const double v : s.v) h.observe(v);
  }
}

}  // namespace robustore::telemetry
