#include "telemetry/timeline.hpp"

#include <cstdio>

#include "telemetry/registry.hpp"

namespace robustore::telemetry {
namespace {

void appendNumber(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

}  // namespace

Timeline::Series& Timeline::series(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    return *it->second;
  }
  Series& s = series_.emplace_back();
  s.name = name;
  index_.emplace(s.name, &s);
  return s;
}

std::size_t Timeline::totalPoints() const {
  std::size_t total = 0;
  for (const Series& s : series_) total += s.size();
  return total;
}

std::string Timeline::toCsv() const {
  std::string out = "t_s,series,value\n";
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      appendNumber(out, s.t[i]);
      out += ',';
      out += s.name;
      out += ',';
      appendNumber(out, s.v[i]);
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::toJson(SimTime sample_dt) const {
  std::string out = "{";
  if (sample_dt > 0.0) {
    out += "\"sample_dt_s\":";
    appendNumber(out, sample_dt);
    out += ",";
  }
  out += "\"series\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += s.name;  // series names are dotted identifiers, no escaping needed
    out += "\",\"points\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i != 0) out += ",";
      out += '[';
      appendNumber(out, s.t[i]);
      out += ',';
      appendNumber(out, s.v[i]);
      out += ']';
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

void Timeline::clear() {
  series_.clear();
  index_.clear();
}

void snapshotToRegistry(const Timeline& timeline, MetricRegistry& registry) {
  registry.counter("telemetry.series").increment(timeline.numSeries());
  registry.counter("telemetry.samples").increment(timeline.totalPoints());
  for (const auto& s : timeline.allSeries()) {
    if (s.size() == 0) continue;
    registry.gauge(s.name).set(s.last());
    Histogram& h = registry.histogram(s.name);
    for (const double v : s.v) h.observe(v);
  }
}

}  // namespace robustore::telemetry
