#include "telemetry/sampler.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/expects.hpp"
#include "core/run_env.hpp"

namespace robustore::telemetry {

PeriodicSampler::PeriodicSampler(SimTime dt, Timeline& timeline,
                                 trace::Tracer* tracer, std::uint32_t track)
    : dt_(dt), timeline_(&timeline), tracer_(tracer), track_(track) {
  ROBUSTORE_EXPECTS(dt > 0.0, "sampler needs a positive interval");
  next_ = dt_;
}

void PeriodicSampler::addProbe(std::string_view name, Probe probe) {
  Entry e;
  e.series = &timeline_->series(name);
  e.trace_name = tracer_ != nullptr ? tracer_->intern(name) : nullptr;
  e.probe = std::move(probe);
  entries_.push_back(std::move(e));
}

void PeriodicSampler::onTimeAdvance(SimTime now) {
  if (now < next_) return;
  // Grid points stay anchored at integer multiples of dt regardless of
  // how the clock jumps; sample the first pending point and (when the
  // advance crossed several) the last one.
  const double steps = std::floor((now - next_) / dt_);
  const SimTime first = next_;
  const SimTime last = next_ + steps * dt_;
  sampleAt(first);
  if (last > first) sampleAt(last);
  next_ = last + dt_;
}

void PeriodicSampler::sampleNow(SimTime at) {
  if (last_sampled_ && at <= *last_sampled_) return;
  sampleAt(at);
  if (at >= next_) {
    next_ = (std::floor(at / dt_) + 1.0) * dt_;
  }
}

void PeriodicSampler::sampleAt(SimTime at) {
  last_sampled_ = at;
  ++samples_;
  for (Entry& e : entries_) {
    const double value = e.probe(at);
    e.series->add(at, value);
    if (tracer_ != nullptr) {
      tracer_->counter(e.trace_name, at, value, track_);
    }
  }
}

SimTime sampleDtFromEnv() { return core::RunEnv::sampleDt(); }

}  // namespace robustore::telemetry
