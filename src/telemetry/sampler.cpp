#include "telemetry/sampler.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/expects.hpp"

namespace robustore::telemetry {

PeriodicSampler::PeriodicSampler(SimTime dt, Timeline& timeline,
                                 trace::Tracer* tracer, std::uint32_t track)
    : dt_(dt), timeline_(&timeline), tracer_(tracer), track_(track) {
  ROBUSTORE_EXPECTS(dt > 0.0, "sampler needs a positive interval");
  next_ = dt_;
}

void PeriodicSampler::addProbe(std::string_view name, Probe probe) {
  Entry e;
  e.series = &timeline_->series(name);
  e.trace_name = tracer_ != nullptr ? tracer_->intern(name) : nullptr;
  e.probe = std::move(probe);
  entries_.push_back(std::move(e));
}

void PeriodicSampler::onTimeAdvance(SimTime now) {
  if (now < next_) return;
  // Grid points stay anchored at integer multiples of dt regardless of
  // how the clock jumps; sample the first pending point and (when the
  // advance crossed several) the last one.
  const double steps = std::floor((now - next_) / dt_);
  const SimTime first = next_;
  const SimTime last = next_ + steps * dt_;
  sampleAt(first);
  if (last > first) sampleAt(last);
  next_ = last + dt_;
}

void PeriodicSampler::sampleNow(SimTime at) {
  if (last_sampled_ && at <= *last_sampled_) return;
  sampleAt(at);
  if (at >= next_) {
    next_ = (std::floor(at / dt_) + 1.0) * dt_;
  }
}

void PeriodicSampler::sampleAt(SimTime at) {
  last_sampled_ = at;
  ++samples_;
  for (Entry& e : entries_) {
    const double value = e.probe(at);
    e.series->add(at, value);
    if (tracer_ != nullptr) {
      tracer_->counter(e.trace_name, at, value, track_);
    }
  }
}

SimTime sampleDtFromEnv() {
  const char* raw = std::getenv("ROBUSTORE_SAMPLE_DT");
  if (raw == nullptr || *raw == '\0') return 0.0;
  char* end = nullptr;
  const double ms = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(ms) || ms <= 0.0) {
    return 0.0;
  }
  return ms * kMilliseconds;
}

}  // namespace robustore::telemetry
