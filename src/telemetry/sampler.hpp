#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "telemetry/timeline.hpp"
#include "trace/trace.hpp"

namespace robustore::telemetry {

/// Sim-time periodic sampler: evaluates registered probes at every
/// `dt`-grid point the simulation clock crosses and appends the values to
/// named Timeline series (and, when a tracer is attached, to Chrome
/// trace_event counter tracks so Perfetto renders the curves next to the
/// spans).
///
/// The sampler is driven by the engine's time observer, not by scheduled
/// events: it consumes zero engine events and zero rng draws, cannot
/// perturb event ordering or keep the engine from draining, and therefore
/// cannot change simulation results — the telemetry-off run is bitwise
/// identical. Probes must only *read* simulation state.
///
/// Gap compression: when one clock advance crosses many grid points (a
/// timeout drain jumping hours ahead), only the first and last pending
/// grid points are sampled. Nothing changes between event executions, so
/// the interior samples would repeat the first one anyway.
class PeriodicSampler {
 public:
  using Probe = std::function<double(SimTime)>;

  /// `tracer` (optional) additionally receives one counter record per
  /// probe per sample on `track`.
  PeriodicSampler(SimTime dt, Timeline& timeline,
                  trace::Tracer* tracer = nullptr,
                  std::uint32_t track = trace::kTelemetryTrack);

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// Registers a probe; evaluated once per sample, in registration order.
  /// Probes receive the sample time (strictly increasing across calls) so
  /// rate-style probes can difference against their previous evaluation.
  void addProbe(std::string_view name, Probe probe);

  /// Engine time-observer hook: samples every pending grid point `<= now`
  /// (gap-compressed, see above).
  void onTimeAdvance(SimTime now);

  /// Explicit off-grid sample (trial start / final drained state). No-op
  /// unless `at` is past the last sampled time.
  void sampleNow(SimTime at);

  [[nodiscard]] SimTime dt() const { return dt_; }
  [[nodiscard]] std::uint64_t samplesTaken() const { return samples_; }

 private:
  void sampleAt(SimTime at);

  struct Entry {
    Timeline::Series* series;
    const char* trace_name;  // interned in the tracer; null when untraced
    Probe probe;
  };

  SimTime dt_;
  Timeline* timeline_;
  trace::Tracer* tracer_;
  std::uint32_t track_;
  std::vector<Entry> entries_;
  SimTime next_ = 0.0;
  std::optional<SimTime> last_sampled_;
  std::uint64_t samples_ = 0;
};

/// Sampling interval from the ROBUSTORE_SAMPLE_DT environment variable
/// (milliseconds, strictly parsed), converted to seconds. Unset,
/// malformed, or non-positive values return 0 (sampling off).
[[nodiscard]] SimTime sampleDtFromEnv();

}  // namespace robustore::telemetry
