#pragma once

#include "telemetry/host_profiler.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"

namespace robustore::telemetry {

/// Everything one trial's sampling produced: the raw time series plus the
/// registry snapshot (final gauges, per-series histograms) derived from
/// them. Handed to ExperimentRunner::runTrial by callers that want the
/// telemetry back (the CLI's `timeline` subcommand); bench sweeps leave
/// it unset and the per-trial series are dropped on the trial's floor.
struct TrialTelemetry {
  MetricRegistry registry;
  Timeline timeline;
  /// The interval the series were sampled at (seconds; 0 = sampler off).
  SimTime sample_dt = 0.0;
};

}  // namespace robustore::telemetry
