#pragma once

#include <cstdint>
#include <map>

namespace robustore::telemetry {

/// Bounded-relative-error quantile histogram (HDR-histogram style) over
/// non-negative values. Each positive value lands in a bucket keyed by
/// its binary exponent (frexp octave) and a 128-way linear subdivision of
/// the mantissa, so bucket width is value/256 and the bucket midpoint is
/// within 1/512 (~0.2%) of every value it holds — comfortably inside the
/// 1% error budget quantile() documents. Non-positive and NaN values
/// count in a dedicated zero bucket (same clamping rule as Histogram).
///
/// Designed for the trial pool: buckets are sparse integer-keyed counts,
/// so merge() is a bucket-wise add — exact, commutative, associative —
/// and the result is independent of merge order or thread count. Memory
/// is bounded by the number of distinct (octave, sub-bucket) pairs the
/// stream touches (≤ 128 per power of two of dynamic range), not by the
/// sample count, so per-access latency recording stays cheap across
/// million-access campaigns.
class QuantileHistogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 128;

  void record(double value);

  /// Folds `other` in (exact bucket-count addition; min/max/sum/count
  /// combine exactly too, except `sum` which is a float accumulation and
  /// therefore associative only bucket-wise — quantiles never read it).
  void merge(const QuantileHistogram& other);

  /// Quantile estimate for p in [0, 100] (clamped). Uses the same rank
  /// convention as SampleSet::percentile (rank = p/100 * (count-1)), so
  /// the two agree to within the bucket error on identical streams.
  /// Edge contract: empty -> 0.0; p <= 0 -> exact min; p >= 100 -> exact
  /// max; otherwise the midpoint of the bucket holding the rank-th
  /// sample, clamped into [min, max]. Worst-case relative error vs the
  /// exact order statistic is half a bucket width: 1/(4*kSubBuckets)
  /// < 0.2%.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] std::uint64_t zeroCount() const { return zero_count_; }
  [[nodiscard]] std::size_t bucketCount() const { return buckets_.size(); }

 private:
  [[nodiscard]] static std::int32_t bucketKey(double value);
  [[nodiscard]] static double bucketMid(std::int32_t key);

  /// (octave * kSubBuckets + sub) -> observation count. std::map keeps
  /// keys ordered, which is what makes quantile() a deterministic
  /// ascending walk.
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace robustore::telemetry
