#include "telemetry/registry.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace robustore::telemetry {

void Histogram::observe(double value) {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  std::size_t bucket = 0;
  double edge = least_;
  while (bucket + 1 < kNumBuckets && value > edge) {
    edge *= 2.0;
    ++bucket;
  }
  ++buckets_[bucket];
}

double Histogram::bucketEdge(std::size_t i) const {
  return least_ * std::exp2(static_cast<double>(i));
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  auto index = static_cast<std::uint64_t>(rank);
  if (index >= count_) index = count_ - 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative > index) {
      double v = bucketEdge(i);
      if (v < min()) v = min();
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

template <typename T, typename... Args>
T& MetricRegistry::getOrCreate(Family<T>& family, std::string_view name,
                               Args&&... args) {
  if (const auto it = family.index.find(name); it != family.index.end()) {
    return *it->second;
  }
  auto& entry = family.entries.emplace_back(std::string(name),
                                            T(std::forward<Args>(args)...));
  family.index.emplace(entry.first, &entry.second);
  return entry.second;
}

Counter& MetricRegistry::counter(std::string_view name) {
  return getOrCreate(counters_, name);
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  return getOrCreate(gauges_, name);
}

Histogram& MetricRegistry::histogram(std::string_view name, double least) {
  return getOrCreate(histograms_, name, least);
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (our component
/// separator) and anything else illegal become '_'.
void appendPromName(std::string& out, std::string_view name) {
  out += "robustore_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

void appendPromValue(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

}  // namespace

std::string MetricRegistry::prometheusText() const {
  std::string out;
  for (const auto& [name, c] : counters_.entries) {
    out += "# TYPE ";
    appendPromName(out, name);
    out += " counter\n";
    appendPromName(out, name);
    out += ' ';
    out += std::to_string(c.value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_.entries) {
    out += "# TYPE ";
    appendPromName(out, name);
    out += " gauge\n";
    appendPromName(out, name);
    out += ' ';
    appendPromValue(out, g.value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_.entries) {
    out += "# TYPE ";
    appendPromName(out, name);
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += h.bucketCount(i);
      appendPromName(out, name);
      out += "_bucket{le=\"";
      if (i + 1 == Histogram::kNumBuckets) {
        out += "+Inf";
      } else {
        appendPromValue(out, h.bucketEdge(i));
      }
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    appendPromName(out, name);
    out += "_sum ";
    appendPromValue(out, h.sum());
    out += '\n';
    appendPromName(out, name);
    out += "_count ";
    out += std::to_string(h.count());
    out += '\n';
  }
  return out;
}

}  // namespace robustore::telemetry
