#include "telemetry/host_profiler.hpp"

#include <mutex>

#include "core/run_env.hpp"

namespace robustore::telemetry {
namespace {

std::mutex global_mutex;
HostProfile global_profile;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

thread_local HostProfiler* HostProfiler::current_ = nullptr;

const char* hostScopeName(HostScope scope) {
  switch (scope) {
    case HostScope::kEngineDispatch:
      return "engine.dispatch";
    case HostScope::kDiskService:
      return "disk.service";
    case HostScope::kDecode:
      return "client.decode";
    case HostScope::kXorKernel:
      return "coding.xor";
  }
  return "?";
}

void HostProfile::merge(const HostProfile& other) {
  for (std::size_t i = 0; i < kNumHostScopes; ++i) {
    seconds[i] += other.seconds[i];
    calls[i] += other.calls[i];
  }
  wall_seconds += other.wall_seconds;
  trials += other.trials;
}

double HostProfile::totalScopeSeconds() const {
  double total = 0.0;
  for (const double s : seconds) total += s;
  return total;
}

bool HostProfiler::enabled() { return core::RunEnv::hostProfile(); }

HostProfile HostProfiler::globalSnapshot() {
  const std::lock_guard<std::mutex> lock(global_mutex);
  return global_profile;
}

void HostProfiler::resetGlobal() {
  const std::lock_guard<std::mutex> lock(global_mutex);
  global_profile = HostProfile{};
}

HostProfiler::TrialGuard::TrialGuard(bool active) : active_(active) {
  if (!active_) return;
  previous_ = current_;
  current_ = &profiler_;
  start_ = std::chrono::steady_clock::now();
}

HostProfiler::TrialGuard::~TrialGuard() {
  if (!active_) return;
  current_ = previous_;
  profiler_.profile_.wall_seconds = secondsSince(start_);
  profiler_.profile_.trials = 1;
  const std::lock_guard<std::mutex> lock(global_mutex);
  global_profile.merge(profiler_.profile_);
}

void HostProfiler::push(HostScope scope) {
  stack_.push_back(Frame{scope, std::chrono::steady_clock::now(), 0.0});
}

void HostProfiler::pop() {
  Frame frame = stack_.back();
  stack_.pop_back();
  const double elapsed = secondsSince(frame.start);
  // Exclusive accounting: this frame's self time is its elapsed time
  // minus what enclosed frames already claimed, and the full elapsed time
  // is charged against the parent's self time in turn.
  const double self = elapsed - frame.child_seconds;
  const auto i = static_cast<std::size_t>(frame.scope);
  profile_.seconds[i] += self > 0.0 ? self : 0.0;
  ++profile_.calls[i];
  if (!stack_.empty()) stack_.back().child_seconds += elapsed;
}

}  // namespace robustore::telemetry
