#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace robustore::telemetry {

/// Monotonic event counter. Cheap enough to stay enabled: increments are
/// one integer add, no locking (metrics are per-trial, like everything
/// else in a trial's simulation state).
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, utilization...).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram over non-negative values: bucket i holds
/// observations in (2^(i-1) * least, 2^i * least] with bucket 0 covering
/// [0, least]. Power-of-two edges make observe() a handful of shifts —
/// no floating-point log on the hot path — while still spanning nine
/// decades with the default 32 buckets.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 32;

  /// `least` is the upper edge of the first bucket (default 1.0).
  explicit Histogram(double least = 1.0) : least_(least > 0 ? least : 1.0) {}

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const {
    return buckets_[i];
  }
  /// Upper edge of bucket i (the last bucket is unbounded).
  [[nodiscard]] double bucketEdge(std::size_t i) const;

  /// Bucket-resolution quantile for p in [0, 100] (clamped): the upper
  /// edge of the bucket holding the sample at rank p/100 * (count-1)
  /// (SampleSet's rank convention), clamped into [min, max]. Edge
  /// contract: empty -> 0.0, p <= 0 -> min, p >= 100 -> max.
  ///
  /// Worst-case error is one bucket: edges are powers of two, so the
  /// result can overstate the true order statistic by up to 2x (the
  /// bucket's full width) — plus whatever the [0, least] first bucket
  /// spans. This is exposition-grade (Prometheus consumers reading p99
  /// off the final snapshot), not analysis-grade; use QuantileHistogram
  /// when ~1% relative error matters.
  [[nodiscard]] double quantile(double p) const;

 private:
  double least_;
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Central name -> metric registry. Names are dotted component paths
/// ("disk.queue_depth"); registration is get-or-create and the iteration
/// order is insertion order, so exports serialise deterministically — no
/// hash-order leaks into output bytes.
class MetricRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     double least = 1.0);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Prometheus text exposition format (final snapshot for future live
  /// serving): one `robustore_`-prefixed family per metric, dots and
  /// other illegal characters mapped to '_'. Histograms emit cumulative
  /// `_bucket{le=...}` series plus `_sum` / `_count`.
  [[nodiscard]] std::string prometheusText() const;

 private:
  template <typename T>
  struct Family {
    std::deque<std::pair<std::string, T>> entries;  // insertion order
    std::unordered_map<std::string_view, T*> index;
    [[nodiscard]] std::size_t size() const { return entries.size(); }
  };

  template <typename T, typename... Args>
  T& getOrCreate(Family<T>& family, std::string_view name, Args&&... args);

  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<Histogram> histograms_;
};

}  // namespace robustore::telemetry
