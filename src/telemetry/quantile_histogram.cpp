#include "telemetry/quantile_histogram.hpp"

#include <cmath>

namespace robustore::telemetry {

std::int32_t QuantileHistogram::bucketKey(double value) {
  int octave = 0;
  const double mantissa = std::frexp(value, &octave);  // in [0.5, 1)
  auto sub = static_cast<std::int32_t>((mantissa - 0.5) * 2.0 *
                                       static_cast<double>(kSubBuckets));
  if (sub < 0) sub = 0;
  const auto last = static_cast<std::int32_t>(kSubBuckets) - 1;
  if (sub > last) sub = last;
  return octave * static_cast<std::int32_t>(kSubBuckets) + sub;
}

double QuantileHistogram::bucketMid(std::int32_t key) {
  const auto n = static_cast<std::int32_t>(kSubBuckets);
  // Floor division: octave keys are negative for values below 1.0.
  std::int32_t octave = key / n;
  std::int32_t sub = key % n;
  if (sub < 0) {
    sub += n;
    --octave;
  }
  const double width = 0.5 / static_cast<double>(kSubBuckets);
  const double mantissa =
      0.5 + (static_cast<double>(sub) + 0.5) * width;
  return std::ldexp(mantissa, octave);
}

void QuantileHistogram::record(double value) {
  if (std::isnan(value) || value < 0.0) value = 0.0;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  if (value == 0.0) {
    ++zero_count_;
    return;
  }
  ++buckets_[bucketKey(value)];
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
}

double QuantileHistogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  // Same rank convention as SampleSet::percentile; the histogram cannot
  // interpolate between neighbours, so it returns the bucket midpoint of
  // the sample at floor(rank) — within bucket error of the interpolated
  // value because neighbours at adjacent ranks share or adjoin buckets.
  const double rank =
      p / 100.0 * static_cast<double>(count_ - 1);
  auto index = static_cast<std::uint64_t>(rank);
  if (index >= count_) index = count_ - 1;
  if (index < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [key, n] : buckets_) {
    cumulative += n;
    if (cumulative > index) {
      double v = bucketMid(key);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max();
}

}  // namespace robustore::telemetry
