#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace robustore::telemetry {

/// The simulator's host-side hot paths: where does *wall-clock* time go
/// while simulating (as opposed to where simulated time goes, which the
/// tracer answers). Coverage matches the known hot loops; everything not
/// under a scope is "other" (trial wall time minus the scope sum).
enum class HostScope : std::uint8_t {
  kEngineDispatch,  // event callback execution (the outermost sim scope)
  kDiskService,     // disk service-time computation + queue management
  kDecode,          // LT / Raptor peeling decoder work
  kXorKernel,       // payload XOR kernels (data-mode codecs only)
};

inline constexpr std::size_t kNumHostScopes = 4;

[[nodiscard]] const char* hostScopeName(HostScope scope);

/// Merged wall-clock profile: exclusive seconds and entry counts per
/// scope. Exclusive accounting (a scope's time excludes enclosed scopes)
/// is what makes the per-scope totals sum to <= 100% of trial wall time.
struct HostProfile {
  double seconds[kNumHostScopes] = {};
  std::uint64_t calls[kNumHostScopes] = {};
  /// Total trial wall-clock seconds (sum over profiled trials).
  double wall_seconds = 0.0;
  std::uint64_t trials = 0;

  void merge(const HostProfile& other);
  [[nodiscard]] bool empty() const { return trials == 0; }
  [[nodiscard]] double scopeSeconds(HostScope s) const {
    return seconds[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double totalScopeSeconds() const;
};

/// Per-trial wall-clock profiler. One trial runs entirely on one worker
/// thread (the PR-1 pool's contract), so the active profiler is a
/// thread-local pointer: instrumentation scopes cost one thread-local
/// read and a branch when profiling is off, and draw no randomness ever.
///
/// Usage: runTrial holds a TrialGuard for the trial's duration; hot paths
/// open Scope RAII frames. Guards merge their trial's profile into a
/// mutex-protected process-global accumulator on destruction, which the
/// bench reporter snapshots into the `host_profile` JSON block.
class HostProfiler {
 public:
  /// Activates profiling on the current thread for one trial (RAII).
  /// Defined after the class: it embeds a HostProfiler, which is
  /// incomplete at this point.
  class TrialGuard;

  /// RAII instrumentation scope; no-op when no trial guard is active on
  /// this thread.
  class Scope {
   public:
    explicit Scope(HostScope scope) : profiler_(current_) {
      if (profiler_ != nullptr) profiler_->push(scope);
    }
    ~Scope() {
      if (profiler_ != nullptr) profiler_->pop();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    HostProfiler* profiler_;
  };

  /// True when ROBUSTORE_HOST_PROFILE is set to a non-empty value other
  /// than "0". Read per call (once per trial), so tests can toggle it.
  [[nodiscard]] static bool enabled();

  /// Copy of the process-global merged profile.
  [[nodiscard]] static HostProfile globalSnapshot();
  static void resetGlobal();

  [[nodiscard]] const HostProfile& profile() const { return profile_; }

 private:
  struct Frame {
    HostScope scope;
    std::chrono::steady_clock::time_point start;
    double child_seconds = 0.0;
  };

  void push(HostScope scope);
  void pop();

  static thread_local HostProfiler* current_;

  std::vector<Frame> stack_;
  HostProfile profile_;
};

/// Activates profiling on the current thread for one trial (RAII).
/// Default activation follows the ROBUSTORE_HOST_PROFILE environment
/// variable; tests pass `active` explicitly. Nests by save/restore, so a
/// trial spawned from an already-profiled section stays correct.
class HostProfiler::TrialGuard {
 public:
  explicit TrialGuard(bool active = HostProfiler::enabled());
  ~TrialGuard();
  TrialGuard(const TrialGuard&) = delete;
  TrialGuard& operator=(const TrialGuard&) = delete;

 private:
  HostProfiler profiler_;
  HostProfiler* previous_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

}  // namespace robustore::telemetry
