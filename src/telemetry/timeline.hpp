#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace robustore::telemetry {

class MetricRegistry;

/// Named time series collected by the periodic sampler: per-series arrays
/// of (sim-time, value) points. Series creation is get-or-create and
/// iteration order is insertion order, so every export serialises
/// deterministically.
class Timeline {
 public:
  struct Series {
    std::string name;
    std::vector<SimTime> t;
    std::vector<double> v;

    void add(SimTime at, double value) {
      t.push_back(at);
      v.push_back(value);
    }
    [[nodiscard]] std::size_t size() const { return t.size(); }
    [[nodiscard]] double last() const { return v.empty() ? 0.0 : v.back(); }
  };

  /// Get-or-create; the reference stays valid for the Timeline's lifetime
  /// (deque storage never relocates on growth).
  [[nodiscard]] Series& series(std::string_view name);

  [[nodiscard]] const std::deque<Series>& allSeries() const { return series_; }
  [[nodiscard]] std::size_t numSeries() const { return series_.size(); }
  [[nodiscard]] std::size_t totalPoints() const;
  [[nodiscard]] bool empty() const { return totalPoints() == 0; }

  /// Long-form CSV: `t_s,series,value` rows in series order (series order
  /// is registration order, point order is time order).
  [[nodiscard]] std::string toCsv() const;

  /// JSON: {"sample_dt_s": dt, "series": [{"name", "points": [[t, v]...]}]}.
  /// `sample_dt` 0 omits the interval field (sampling was explicit-only).
  [[nodiscard]] std::string toJson(SimTime sample_dt = 0.0) const;

  void clear();

 private:
  std::deque<Series> series_;
  std::unordered_map<std::string_view, Series*> index_;
};

/// Folds a finished timeline into a registry: per-series gauges hold the
/// final value, per-series histograms the full point distribution, and a
/// `telemetry.series` / `telemetry.samples` counter pair sizes the
/// collection. Runs once per trial at collection end, keeping the
/// sampling hot path free of registry lookups.
void snapshotToRegistry(const Timeline& timeline, MetricRegistry& registry);

}  // namespace robustore::telemetry
