#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/scheme.hpp"
#include "common/units.hpp"

namespace robustore::chaos {

/// The chaos vocabulary: every fault verb the simulator knows how to
/// inject, composed into one seeded schedule. The first four map onto
/// fault::FaultSpec; the churn pair onto fault::ChurnEvent (a permanent
/// failure whose replacement arrives *empty*); corruption onto
/// fault::CorruptionSpec (silent damage the reader's checksum catches).
enum class ChaosVerb : std::uint8_t {
  kFailStop,      // disk dead at `at` until its paired replacement
  kCrashRecover,  // disk dead during [at, at + duration); data survives
  kStall,         // service pause of `duration`; no loss
  kSlowDisk,      // service times x `multiplier` from `at` on
  kChurnFail,     // permanent failure: slot contents gone for good
  kChurnReplace,  // empty replacement disk arrives in the slot
  kCorruptBlock,  // stored block `block` (mod stored count) damaged
};

[[nodiscard]] const char* chaosVerbName(ChaosVerb verb);

/// One scheduled fault. `disk` indexes the campaign's selected roster
/// (0..disks_per_access), not the global disk space, so a schedule is
/// meaningful independent of the seed-drawn disk selection.
struct ChaosEvent {
  ChaosVerb verb = ChaosVerb::kStall;
  std::uint32_t disk = 0;
  SimTime at = 0.0;
  SimTime duration = 0.0;   // crash-recover / stall only
  double multiplier = 1.0;  // slow-disk only
  std::uint32_t block = 0;  // corrupt-block only

  [[nodiscard]] bool operator==(const ChaosEvent&) const = default;
};

/// Retry-loop knobs the campaign hands to client::AccessConfig. Kept in
/// the plan (and its JSON form) so a serialized repro replays under the
/// exact client behavior that failed, not whatever the defaults are by
/// the time someone loads it.
struct AccessTuning {
  std::uint32_t max_reissues = 12;
  SimTime reissue_delay = 0.01;
  double reissue_backoff = 2.0;
  SimTime max_reissue_delay = 0.5;
  SimTime request_timeout = 5.0;

  [[nodiscard]] bool operator==(const AccessTuning&) const = default;
};

/// A complete, self-contained fault campaign: cluster shape, access
/// shape, fault schedule, and the seed every derived RNG stream hangs
/// off. Two runs of the same plan are bit-identical (same digest).
struct CampaignPlan {
  std::uint64_t seed = 0;
  client::SchemeKind scheme = client::SchemeKind::kRobuStore;
  std::uint32_t num_servers = 2;
  std::uint32_t disks_per_server = 4;
  std::uint32_t disks_per_access = 8;
  std::uint32_t k = 8;
  Bytes block_bytes = 64 * kKiB;
  double redundancy = 3.0;
  std::uint32_t accesses = 2;
  SimTime deadline = 25.0;
  SimTime scan_interval = 1.0;    // repair detection period
  double repair_budget = 0.0;     // bytes/s; 0 = unthrottled
  /// Injected-bug knob: replays the pre-clamp reissue backoff (the cap in
  /// AccessTuning is ignored and the exponential grows unboundedly). The
  /// acceptance campaign seeds this bug and expects the completion
  /// invariant to catch it.
  bool unclamped_backoff = false;
  AccessTuning access;
  std::vector<ChaosEvent> events;

  [[nodiscard]] bool operator==(const CampaignPlan&) const = default;

  /// True if any event can destroy data (fail-stop, churn failure, block
  /// corruption) as opposed to merely delaying it.
  [[nodiscard]] bool destructive() const;
};

/// Draws the randomized campaign for `seed`: scheme from the low seed
/// bits, cluster/access shape and 2..7 fault events from a seed-forked
/// stream. The destructive-event budget respects each scheme's fault
/// tolerance (RAID-0 gets none; replicated schemes lose at most
/// copies-1 distinct disks; RobuSTore at most 2), every permanent
/// failure is paired with a later empty replacement, and all events land
/// early enough that the repair service can restore full redundancy
/// before the deadline.
[[nodiscard]] CampaignPlan planFromSeed(std::uint64_t seed);

/// The known-bug acceptance campaign: a RAID-0 read (every block
/// required) that rides out a long crash-recover outage with a steep
/// retry backoff — harmless with the production clamp, fatal with
/// `unclamped_backoff` (the retry overshoots the deadline). Noise events
/// are included so the shrinker has something to strip.
[[nodiscard]] CampaignPlan buggyBackoffPlan(std::uint64_t seed);

/// JSON round-trip for (seed, schedule) repro files. serialize() emits a
/// stable, human-diffable layout; parse() accepts exactly what
/// serialize() produces (plus whitespace) and aborts on malformed input
/// via ROBUSTORE_EXPECTS — a repro file is an instrument, not user
/// input. Round-tripped plans replay bit-identically: doubles are
/// printed with 17 significant digits.
[[nodiscard]] std::string serializePlan(const CampaignPlan& plan);
[[nodiscard]] CampaignPlan parsePlan(const std::string& json);

}  // namespace robustore::chaos
