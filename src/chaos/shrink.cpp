#include "chaos/shrink.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace robustore::chaos {

namespace {

CampaignPlan withEvents(const CampaignPlan& base,
                        std::vector<ChaosEvent> events) {
  CampaignPlan plan = base;
  plan.events = std::move(events);
  return plan;
}

}  // namespace

ShrinkResult shrinkSchedule(const CampaignPlan& plan,
                            const StillFails& still_fails) {
  ShrinkResult result;
  result.minimized = plan;

  const auto test = [&](const std::vector<ChaosEvent>& events) {
    ++result.tests_run;
    return still_fails(withEvents(plan, events));
  };

  ++result.tests_run;
  ROBUSTORE_EXPECTS(still_fails(plan),
                    "shrinkSchedule: the input plan does not fail");

  // The empty schedule failing means the bug needs no faults at all —
  // the minimal repro.
  if (test({})) {
    result.minimized.events.clear();
    return result;
  }

  std::vector<ChaosEvent> events = plan.events;
  std::size_t granularity = 2;
  while (events.size() >= 2) {
    const std::size_t n = std::min(granularity, events.size());
    // Chunk boundaries: n contiguous, near-equal slices.
    const auto chunk = [&](std::size_t i) {
      const std::size_t begin = events.size() * i / n;
      const std::size_t end = events.size() * (i + 1) / n;
      return std::pair{begin, end};
    };

    bool reduced = false;
    // Try each subset (one chunk alone) — the steepest reduction first.
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      const auto [begin, end] = chunk(i);
      std::vector<ChaosEvent> subset(events.begin() + begin,
                                     events.begin() + end);
      if (subset.size() < events.size() && test(subset)) {
        events = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    if (reduced) continue;

    // Try each complement (drop one chunk).
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      const auto [begin, end] = chunk(i);
      std::vector<ChaosEvent> complement;
      complement.insert(complement.end(), events.begin(),
                        events.begin() + begin);
      complement.insert(complement.end(), events.begin() + end, events.end());
      if (complement.size() < events.size() && test(complement)) {
        events = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;

    if (granularity >= events.size()) break;  // 1-minimal
    granularity = std::min(granularity * 2, events.size());
  }

  result.minimized.events = std::move(events);
  return result;
}

}  // namespace robustore::chaos
