#include "chaos/schedule.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace robustore::chaos {

const char* chaosVerbName(ChaosVerb verb) {
  switch (verb) {
    case ChaosVerb::kFailStop:
      return "fail-stop";
    case ChaosVerb::kCrashRecover:
      return "crash-recover";
    case ChaosVerb::kStall:
      return "stall";
    case ChaosVerb::kSlowDisk:
      return "slow-disk";
    case ChaosVerb::kChurnFail:
      return "churn-fail";
    case ChaosVerb::kChurnReplace:
      return "churn-replace";
    case ChaosVerb::kCorruptBlock:
      return "corrupt-block";
  }
  return "?";
}

bool CampaignPlan::destructive() const {
  for (const ChaosEvent& e : events) {
    if (e.verb == ChaosVerb::kFailStop || e.verb == ChaosVerb::kChurnFail ||
        e.verb == ChaosVerb::kCorruptBlock) {
      return true;
    }
  }
  return false;
}

CampaignPlan planFromSeed(std::uint64_t seed) {
  CampaignPlan plan;
  plan.seed = seed;
  static constexpr client::SchemeKind kKinds[] = {
      client::SchemeKind::kRaid0, client::SchemeKind::kRRaidS,
      client::SchemeKind::kRRaidA, client::SchemeKind::kRobuStore};
  plan.scheme = kKinds[seed % 4];
  Rng rng(seed ^ 0xC7A05EEDULL);

  switch (plan.scheme) {
    case client::SchemeKind::kRaid0:
      plan.k = rng.bernoulli(0.5) ? 8 : 16;
      plan.redundancy = 0.0;
      break;
    case client::SchemeKind::kRRaidS:
      plan.k = rng.bernoulli(0.5) ? 8 : 16;
      plan.redundancy = rng.bernoulli(0.5) ? 1.0 : 2.0;  // 2 or 3 copies
      break;
    case client::SchemeKind::kRRaidA:
      // Small k so the MDS regenerating repair path has d >= k live
      // helpers on an 8-disk roster (Dimakis partial reads, not the
      // naive-decode fallback).
      plan.k = rng.bernoulli(0.5) ? 4 : 8;
      plan.redundancy = 2.0;
      break;
    case client::SchemeKind::kRobuStore:
      plan.k = rng.bernoulli(0.5) ? 8 : 16;
      plan.redundancy = 3.0;
      break;
  }
  plan.block_bytes = rng.bernoulli(0.5) ? 16 * kKiB : 64 * kKiB;
  plan.accesses = 2 + static_cast<std::uint32_t>(rng.below(2));
  plan.repair_budget = mbps(50.0);

  // Destructive budget: distinct disks that may lose data, per scheme
  // tolerance. One corrupt block burns a whole disk's budget — the repair
  // model restores at placement granularity, so that is the unit of loss.
  std::uint32_t budget = 0;
  switch (plan.scheme) {
    case client::SchemeKind::kRaid0:
      budget = 0;  // no redundancy: nothing may be destroyed
      break;
    case client::SchemeKind::kRRaidS:
    case client::SchemeKind::kRRaidA: {
      client::AccessConfig probe;
      probe.redundancy = plan.redundancy;
      budget = probe.replicaCount() - 1;
      break;
    }
    case client::SchemeKind::kRobuStore:
      budget = 2;  // 3x redundancy over 8 disks shrugs off two
      break;
  }

  // Events land in [0.5, deadline - 10) and every replacement by
  // deadline - 7: with a 1 s scan interval the repair service has >= 6
  // scans to re-protect everything before the deadline audit.
  const SimTime window = plan.deadline - 10.0 - 0.5;
  const std::uint32_t count = 2 + static_cast<std::uint32_t>(rng.below(6));
  std::vector<std::uint8_t> destroyed(plan.disks_per_access, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    ChaosEvent e;
    e.at = 0.5 + rng.uniform() * window;
    e.disk = static_cast<std::uint32_t>(rng.below(plan.disks_per_access));
    const bool want_destructive = budget > 0 && rng.bernoulli(0.4);
    if (want_destructive && destroyed[e.disk] == 0) {
      destroyed[e.disk] = 1;
      --budget;
      const double pick = rng.uniform();
      if (pick < 0.25) {
        // Corruption: one stored block, detected by the reader, restored
        // by the repair sweep. Does not need a replacement.
        e.verb = ChaosVerb::kCorruptBlock;
        e.block = static_cast<std::uint32_t>(rng.below(64));
        plan.events.push_back(e);
      } else {
        // Permanent loss (scripted fail-stop or churn failure — same
        // disk-level effect, different injection path), always paired
        // with a later empty replacement so redundancy can be rebuilt.
        e.verb = pick < 0.5 ? ChaosVerb::kFailStop : ChaosVerb::kChurnFail;
        plan.events.push_back(e);
        ChaosEvent repl;
        repl.verb = ChaosVerb::kChurnReplace;
        repl.disk = e.disk;
        repl.at = e.at + 1.0 + rng.uniform() * 2.0;
        plan.events.push_back(repl);
      }
      continue;
    }
    // Benign (delay-only) verbs. Outages are capped well inside the
    // retry budget: ~3.6 s of clamped backoff covers a 0.8 s outage on
    // every scheme, so a crash-recover alone never makes data
    // unreachable for good.
    const double pick = rng.uniform();
    if (pick < 0.4) {
      e.verb = ChaosVerb::kStall;
      e.duration = 0.05 + rng.uniform() * 0.45;
    } else if (pick < 0.75) {
      e.verb = ChaosVerb::kCrashRecover;
      e.duration = 0.1 + rng.uniform() * 0.7;
    } else {
      e.verb = ChaosVerb::kSlowDisk;
      e.multiplier = 2.0 + rng.uniform() * 4.0;
    }
    plan.events.push_back(e);
  }
  return plan;
}

CampaignPlan buggyBackoffPlan(std::uint64_t seed) {
  CampaignPlan plan;
  plan.seed = seed;
  plan.scheme = client::SchemeKind::kRaid0;  // every block is required
  plan.k = 8;
  plan.block_bytes = 16 * kKiB;
  plan.redundancy = 0.0;
  plan.accesses = 1;
  plan.unclamped_backoff = true;
  // Steep backoff + a long outage covering the access start: the clamped
  // retry ladder walks the 10 s outage out in ~0.5 s steps and completes
  // by ~10.5 s; without the clamp the exponential's rungs land at ~0.1,
  // 0.7, 5.9, then ~47 s — past the deadline, so the access never
  // terminates and the completion invariant fires.
  plan.access.reissue_delay = 0.01;
  plan.access.reissue_backoff = 8.0;
  plan.access.max_reissue_delay = 0.5;
  plan.access.max_reissues = 40;

  ChaosEvent outage;
  outage.verb = ChaosVerb::kCrashRecover;
  outage.disk = 0;
  outage.at = 0.0;  // down before the first request is issued
  outage.duration = 10.0;
  plan.events.push_back(outage);

  // Shrinker fodder: benign noise on other disks that a minimal repro
  // does not need.
  Rng rng(seed ^ 0xB0660FFULL);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ChaosEvent noise;
    noise.disk = 1 + static_cast<std::uint32_t>(rng.below(7));
    noise.at = 0.5 + rng.uniform() * 10.0;
    if (rng.bernoulli(0.5)) {
      noise.verb = ChaosVerb::kStall;
      noise.duration = 0.05 + rng.uniform() * 0.3;
    } else {
      noise.verb = ChaosVerb::kSlowDisk;
      noise.multiplier = 2.0 + rng.uniform() * 3.0;
    }
    plan.events.push_back(noise);
  }
  return plan;
}

// ---------------------------------------------------------------------
// JSON serialization. Hand-rolled on purpose: the schema is tiny, the
// container has no JSON dependency, and repro files must round-trip
// doubles bit-exactly (%.17g) for bit-identical replay.

namespace {

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void appendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

const char* schemeToken(client::SchemeKind kind) {
  switch (kind) {
    case client::SchemeKind::kRaid0:
      return "raid0";
    case client::SchemeKind::kRRaidS:
      return "rraid-s";
    case client::SchemeKind::kRRaidA:
      return "rraid-a";
    case client::SchemeKind::kRobuStore:
      return "robustore";
  }
  return "?";
}

client::SchemeKind schemeFromToken(const std::string& token) {
  if (token == "raid0") return client::SchemeKind::kRaid0;
  if (token == "rraid-s") return client::SchemeKind::kRRaidS;
  if (token == "rraid-a") return client::SchemeKind::kRRaidA;
  ROBUSTORE_EXPECTS(token == "robustore", "unknown scheme token");
  return client::SchemeKind::kRobuStore;
}

ChaosVerb verbFromToken(const std::string& token) {
  for (int v = 0; v <= static_cast<int>(ChaosVerb::kCorruptBlock); ++v) {
    const auto verb = static_cast<ChaosVerb>(v);
    if (token == chaosVerbName(verb)) return verb;
  }
  ROBUSTORE_EXPECTS(false, "unknown chaos verb token");
  return ChaosVerb::kStall;
}

/// Minimal recursive-descent reader for the fixed repro schema: objects,
/// arrays, strings (no escapes — tokens only), numbers, booleans.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skipWs();
    ROBUSTORE_EXPECTS(pos_ < text_.size() && text_[pos_] == c,
                      "malformed repro JSON: unexpected character");
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out += text_[pos_++];
    expect('"');
    return out;
  }

  [[nodiscard]] double number() {
    skipWs();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    ROBUSTORE_EXPECTS(end != start, "malformed repro JSON: expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  [[nodiscard]] bool boolean() {
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    ROBUSTORE_EXPECTS(text_.compare(pos_, 5, "false") == 0,
                      "malformed repro JSON: expected boolean");
    pos_ += 5;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serializePlan(const CampaignPlan& plan) {
  std::string out = "{\n";
  out += "  \"seed\": ";
  appendU64(out, plan.seed);
  out += ",\n  \"scheme\": \"";
  out += schemeToken(plan.scheme);
  out += "\",\n  \"num_servers\": ";
  appendU64(out, plan.num_servers);
  out += ",\n  \"disks_per_server\": ";
  appendU64(out, plan.disks_per_server);
  out += ",\n  \"disks_per_access\": ";
  appendU64(out, plan.disks_per_access);
  out += ",\n  \"k\": ";
  appendU64(out, plan.k);
  out += ",\n  \"block_bytes\": ";
  appendU64(out, plan.block_bytes);
  out += ",\n  \"redundancy\": ";
  appendDouble(out, plan.redundancy);
  out += ",\n  \"accesses\": ";
  appendU64(out, plan.accesses);
  out += ",\n  \"deadline\": ";
  appendDouble(out, plan.deadline);
  out += ",\n  \"scan_interval\": ";
  appendDouble(out, plan.scan_interval);
  out += ",\n  \"repair_budget\": ";
  appendDouble(out, plan.repair_budget);
  out += ",\n  \"unclamped_backoff\": ";
  out += plan.unclamped_backoff ? "true" : "false";
  out += ",\n  \"access\": {\"max_reissues\": ";
  appendU64(out, plan.access.max_reissues);
  out += ", \"reissue_delay\": ";
  appendDouble(out, plan.access.reissue_delay);
  out += ", \"reissue_backoff\": ";
  appendDouble(out, plan.access.reissue_backoff);
  out += ", \"max_reissue_delay\": ";
  appendDouble(out, plan.access.max_reissue_delay);
  out += ", \"request_timeout\": ";
  appendDouble(out, plan.access.request_timeout);
  out += "},\n  \"events\": [";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const ChaosEvent& e = plan.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"verb\": \"";
    out += chaosVerbName(e.verb);
    out += "\", \"disk\": ";
    appendU64(out, e.disk);
    out += ", \"at\": ";
    appendDouble(out, e.at);
    out += ", \"duration\": ";
    appendDouble(out, e.duration);
    out += ", \"multiplier\": ";
    appendDouble(out, e.multiplier);
    out += ", \"block\": ";
    appendU64(out, e.block);
    out += "}";
  }
  out += plan.events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

CampaignPlan parsePlan(const std::string& json) {
  CampaignPlan plan;
  plan.events.clear();
  JsonReader r(json);
  r.expect('{');
  bool first = true;
  while (true) {
    if (!first && !r.consume(',')) break;
    first = false;
    r.skipWs();
    const std::string key = r.string();
    r.expect(':');
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(r.number());
    } else if (key == "scheme") {
      plan.scheme = schemeFromToken(r.string());
    } else if (key == "num_servers") {
      plan.num_servers = static_cast<std::uint32_t>(r.number());
    } else if (key == "disks_per_server") {
      plan.disks_per_server = static_cast<std::uint32_t>(r.number());
    } else if (key == "disks_per_access") {
      plan.disks_per_access = static_cast<std::uint32_t>(r.number());
    } else if (key == "k") {
      plan.k = static_cast<std::uint32_t>(r.number());
    } else if (key == "block_bytes") {
      plan.block_bytes = static_cast<Bytes>(r.number());
    } else if (key == "redundancy") {
      plan.redundancy = r.number();
    } else if (key == "accesses") {
      plan.accesses = static_cast<std::uint32_t>(r.number());
    } else if (key == "deadline") {
      plan.deadline = r.number();
    } else if (key == "scan_interval") {
      plan.scan_interval = r.number();
    } else if (key == "repair_budget") {
      plan.repair_budget = r.number();
    } else if (key == "unclamped_backoff") {
      plan.unclamped_backoff = r.boolean();
    } else if (key == "access") {
      r.expect('{');
      bool inner_first = true;
      while (true) {
        if (!inner_first && !r.consume(',')) break;
        inner_first = false;
        const std::string field = r.string();
        r.expect(':');
        if (field == "max_reissues") {
          plan.access.max_reissues = static_cast<std::uint32_t>(r.number());
        } else if (field == "reissue_delay") {
          plan.access.reissue_delay = r.number();
        } else if (field == "reissue_backoff") {
          plan.access.reissue_backoff = r.number();
        } else if (field == "max_reissue_delay") {
          plan.access.max_reissue_delay = r.number();
        } else if (field == "request_timeout") {
          plan.access.request_timeout = r.number();
        } else {
          ROBUSTORE_EXPECTS(false, "unknown access-tuning field");
        }
      }
      r.expect('}');
    } else if (key == "events") {
      r.expect('[');
      if (!r.consume(']')) {
        do {
          r.expect('{');
          ChaosEvent e;
          bool event_first = true;
          while (true) {
            if (!event_first && !r.consume(',')) break;
            event_first = false;
            const std::string field = r.string();
            r.expect(':');
            if (field == "verb") {
              e.verb = verbFromToken(r.string());
            } else if (field == "disk") {
              e.disk = static_cast<std::uint32_t>(r.number());
            } else if (field == "at") {
              e.at = r.number();
            } else if (field == "duration") {
              e.duration = r.number();
            } else if (field == "multiplier") {
              e.multiplier = r.number();
            } else if (field == "block") {
              e.block = static_cast<std::uint32_t>(r.number());
            } else {
              ROBUSTORE_EXPECTS(false, "unknown event field");
            }
          }
          r.expect('}');
          plan.events.push_back(e);
        } while (r.consume(','));
        r.expect(']');
      }
    } else {
      ROBUSTORE_EXPECTS(false, "unknown campaign-plan field");
    }
  }
  r.expect('}');
  return plan;
}

}  // namespace robustore::chaos
