#pragma once

#include <cstdint>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"

namespace robustore::chaos {

/// Outcome of one executed campaign: what the invariants said, plus a
/// digest of every observable the run produced. Two executions of the
/// same plan must return the same digest (bit-identical replay); the
/// smoke CI compares digests across thread counts and process runs.
struct CampaignResult {
  std::vector<Violation> violations;
  Observations observations;
  std::uint64_t digest = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Executes `plan` end to end on a fresh engine/cluster: plans the file,
/// arms the fault injector with the schedule, runs the repair service
/// (all schemes but RAID-0) and the RobuSTore data plane (real decoded
/// bytes), chains the accesses, aborts whatever is left at the deadline,
/// drains, and evaluates `registry` over the collected Observations.
[[nodiscard]] CampaignResult runCampaign(
    const CampaignPlan& plan,
    const InvariantRegistry& registry = InvariantRegistry::standard());

}  // namespace robustore::chaos
