#pragma once

#include <cstdint>
#include <functional>

#include "chaos/schedule.hpp"

namespace robustore::chaos {

/// Predicate over a candidate plan: true = "this plan still fails" (the
/// interesting property). Must be deterministic — the shrinker assumes a
/// plan's verdict never changes between evaluations.
using StillFails = std::function<bool(const CampaignPlan&)>;

struct ShrinkResult {
  CampaignPlan minimized;
  /// Candidate plans evaluated (including the final verification run).
  std::uint32_t tests_run = 0;
};

/// Delta-debugging (ddmin, Zeller & Hildebrandt) over the plan's event
/// list: finds a 1-minimal failing subset — removing any single remaining
/// event makes the failure go away. Everything but `events` is copied
/// through unchanged, so the minimized plan replays under the exact
/// cluster/access shape that failed. `plan` itself must satisfy
/// `still_fails` (aborts otherwise).
[[nodiscard]] ShrinkResult shrinkSchedule(const CampaignPlan& plan,
                                          const StillFails& still_fails);

}  // namespace robustore::chaos
