#include "chaos/campaign.hpp"

#include <bit>
#include <functional>
#include <memory>
#include <utility>

#include "client/cluster.hpp"
#include "client/robustore_scheme.hpp"
#include "client/scheme.hpp"
#include "client/stored_file.hpp"
#include "coding/lt_codec.hpp"
#include "common/expects.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "repair/repair.hpp"
#include "sim/engine.hpp"

namespace robustore::chaos {

namespace {

/// FNV-1a over the run's observables: the digest two replays of one plan
/// must agree on bit-for-bit.
struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ULL;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash = (hash ^ (v & 0xffu)) * 1099511628211ULL;
      v >>= 8;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    mix(static_cast<std::uint64_t>(s.size()));
  }
};

/// Is the file's data reachable right now (live, uncorrupted placements
/// suffice to reconstruct every original block)? Used two ways: as the
/// at-failure-time exemption test, and — via plan-projected placement
/// deaths — as the worst-case decodability bound that decides whether a
/// repair loss event was legitimate. `placement_dead` answers "is
/// placement p unusable".
bool dataUnreachable(client::SchemeKind scheme, const client::StoredFile& file,
                     const std::function<bool(std::uint32_t)>& placement_dead) {
  const auto pos_bad = [&](std::uint32_t p, std::uint32_t pos) {
    return placement_dead(p) || file.isCorrupt(p, pos);
  };
  switch (scheme) {
    case client::SchemeKind::kRaid0: {
      // Every stored block is required: any dead placement or corrupt
      // flag makes some block unreachable.
      for (std::uint32_t p = 0; p < file.placements.size(); ++p) {
        if (placement_dead(p)) return true;
      }
      return file.corruptCount() != 0;
    }
    case client::SchemeKind::kRRaidS:
    case client::SchemeKind::kRRaidA: {
      std::vector<std::uint8_t> covered(file.k, 0);
      for (std::uint32_t p = 0; p < file.placements.size(); ++p) {
        const auto& stored = file.placements[p].stored;
        for (std::uint32_t pos = 0; pos < stored.size(); ++pos) {
          if (!pos_bad(p, pos)) {
            covered[static_cast<std::uint32_t>(stored[pos]) % file.k] = 1;
          }
        }
      }
      for (std::uint32_t b = 0; b < file.k; ++b) {
        if (covered[b] == 0) return true;
      }
      return false;
    }
    case client::SchemeKind::kRobuStore: {
      ROBUSTORE_EXPECTS(file.lt_graph != nullptr,
                        "RobuSTore file without an LT graph");
      coding::LtDecoder decoder(*file.lt_graph);  // ID mode
      for (std::uint32_t p = 0; p < file.placements.size(); ++p) {
        const auto& stored = file.placements[p].stored;
        for (std::uint32_t pos = 0; pos < stored.size(); ++pos) {
          if (!pos_bad(p, pos)) {
            (void)decoder.addSymbol(static_cast<std::uint32_t>(stored[pos]));
          }
        }
      }
      return !decoder.complete();
    }
  }
  return false;
}

/// Worst-case projection: every placement a destructive event ever
/// touches is treated as fully gone at once (corruption counts — repair
/// granularity escalates one bad block to the whole slot).
bool worstCaseUndecodable(const CampaignPlan& plan,
                          const client::StoredFile& file) {
  std::vector<std::uint8_t> dead(plan.disks_per_access, 0);
  for (const ChaosEvent& e : plan.events) {
    if (e.verb == ChaosVerb::kFailStop || e.verb == ChaosVerb::kChurnFail ||
        e.verb == ChaosVerb::kCorruptBlock) {
      dead[e.disk % plan.disks_per_access] = 1;
    }
  }
  return dataUnreachable(plan.scheme, file, [&](std::uint32_t p) {
    return dead[p % dead.size()] != 0;
  });
}

struct AccessRun {
  client::Scheme::Session session;
  AccessOutcome outcome;
};

}  // namespace

CampaignResult runCampaign(const CampaignPlan& plan,
                           const InvariantRegistry& registry) {
  ROBUSTORE_EXPECTS(plan.accesses > 0, "campaign needs at least one access");
  sim::Engine engine;

  bool clock_monotone = true;
  SimTime last_time = 0.0;
  engine.setTimeObserver([&](SimTime t) {
    if (t < last_time) clock_monotone = false;
    last_time = t;
  });

  client::ClusterConfig cc;
  cc.num_servers = plan.num_servers;
  cc.server.disks_per_server = plan.disks_per_server;
  client::Cluster cluster(engine, cc, Rng(plan.seed ^ 0xC1u));

  auto scheme = client::makeScheme(plan.scheme, cluster, coding::LtParams{});
  auto* robu = dynamic_cast<client::RobuStoreScheme*>(scheme.get());

  client::AccessConfig acfg;
  acfg.block_bytes = plan.block_bytes;
  acfg.k = plan.k;
  acfg.redundancy = plan.redundancy;
  acfg.request_timeout = plan.access.request_timeout;
  acfg.max_reissues = plan.access.max_reissues;
  acfg.reissue_delay = plan.access.reissue_delay;
  acfg.reissue_backoff = plan.access.reissue_backoff;
  // The injected-bug knob: dropping the clamp replays the pre-fix
  // unbounded exponential backoff.
  acfg.max_reissue_delay =
      plan.unclamped_backoff ? 1e18 : plan.access.max_reissue_delay;
  acfg.heal_on_read = plan.scheme != client::SchemeKind::kRaid0;

  Rng trial_rng(plan.seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::vector<std::uint32_t> roster =
      cluster.selectDisks(plan.disks_per_access, trial_rng);
  client::LayoutPolicy policy;
  policy.heterogeneous = false;
  client::StoredFile file = scheme->planFile(acfg, roster, policy, trial_rng);

  const bool worst_case_undecodable = worstCaseUndecodable(plan, file);

  // Background repair for every redundant scheme. The horizon stops the
  // periodic scan from self-rescheduling forever in the final drain.
  std::unique_ptr<repair::RepairService> svc;
  if (plan.scheme != client::SchemeKind::kRaid0) {
    repair::RepairConfig rcfg;
    rcfg.scan_interval = plan.scan_interval;
    rcfg.bandwidth_budget = plan.repair_budget;
    rcfg.horizon = plan.deadline;
    svc = std::make_unique<repair::RepairService>(cluster, rcfg);
    repair::RepairPolicy rpolicy;
    rpolicy.k = plan.k;
    switch (plan.scheme) {
      case client::SchemeKind::kRRaidS:
        rpolicy.klass = repair::RedundancyClass::kReplication;
        break;
      case client::SchemeKind::kRRaidA:
        rpolicy.klass = repair::RedundancyClass::kMds;
        rpolicy.regenerating = true;  // Dimakis partial helper reads
        break;
      default:
        rpolicy.klass = repair::RedundancyClass::kLt;
        break;
    }
    svc->protect(file, rpolicy);
    svc->start();
  }
  repair::RepairService* svc_raw = svc.get();

  fault::FaultInjector injector(
      engine, [&cluster, &roster](std::uint32_t i) -> disk::Disk& {
        return cluster.disk(roster[i % roster.size()]);
      });

  // Corruption lands on the file layer: flag the stored block so the
  // reader's checksum rejects it, then tell repair the slot is damaged.
  injector.setCorruptionApplier([&file,
                                 svc_raw](const fault::CorruptionSpec& spec) {
    const std::uint32_t p =
        spec.disk % static_cast<std::uint32_t>(file.placements.size());
    const auto& stored = file.placements[p].stored;
    if (stored.empty()) return;
    file.corruptBlock(p, spec.block % static_cast<std::uint32_t>(
                                          stored.size()));
    if (svc_raw != nullptr) svc_raw->onBlockCorrupted(file, p);
  });

  // Churn wiring: failures flow into the repair service's liveness view;
  // a replacement arrives *empty*, which the file layer models as every
  // previously stored block on the slot being unreadable (corrupt) until
  // a repair or restore rewrites it.
  injector.setChurnListener([&](const fault::ChurnEvent& ev) {
    const std::uint32_t p =
        ev.disk % static_cast<std::uint32_t>(file.placements.size());
    const std::uint32_t global = file.placements[p].global_disk;
    if (ev.kind == fault::ChurnEventKind::kPermanentFailure) {
      if (svc_raw != nullptr) svc_raw->onDiskFailed(global);
      return;
    }
    const auto& stored = file.placements[p].stored;
    for (std::uint32_t pos = 0; pos < stored.size(); ++pos) {
      file.corruptBlock(p, pos);
    }
    if (svc_raw != nullptr) svc_raw->onDiskReplaced(global);
  });

  std::vector<fault::FaultSpec> specs;
  std::vector<fault::ChurnEvent> churn;
  std::vector<fault::CorruptionSpec> corruptions;
  for (const ChaosEvent& e : plan.events) {
    switch (e.verb) {
      case ChaosVerb::kFailStop:
      case ChaosVerb::kCrashRecover:
      case ChaosVerb::kStall:
      case ChaosVerb::kSlowDisk: {
        fault::FaultSpec spec;
        spec.disk = e.disk;
        spec.at = e.at;
        spec.duration = e.duration;
        spec.service_multiplier = e.multiplier;
        spec.kind = e.verb == ChaosVerb::kFailStop ? fault::FaultKind::kFailStop
                    : e.verb == ChaosVerb::kCrashRecover
                        ? fault::FaultKind::kCrashRecover
                    : e.verb == ChaosVerb::kStall
                        ? fault::FaultKind::kTransientStall
                        : fault::FaultKind::kSlowDisk;
        specs.push_back(spec);
        break;
      }
      case ChaosVerb::kChurnFail:
        churn.push_back({e.disk, fault::ChurnEventKind::kPermanentFailure,
                         e.at});
        break;
      case ChaosVerb::kChurnReplace:
        churn.push_back({e.disk, fault::ChurnEventKind::kReplacement, e.at});
        break;
      case ChaosVerb::kCorruptBlock:
        corruptions.push_back({e.disk, e.block, e.at});
        break;
    }
  }
  injector.scheduleAll(specs);
  injector.scheduleChurn(churn);
  injector.scheduleCorruption(corruptions);
  // Scripted fail-stops bypass the churn listener, so pair each with its
  // own repair notification. Scheduled after the injector batches: same
  // timestamp, later sequence number — the disk is down when it fires.
  if (svc_raw != nullptr) {
    for (const ChaosEvent& e : plan.events) {
      if (e.verb != ChaosVerb::kFailStop) continue;
      const std::uint32_t global =
          file.placements[e.disk % file.placements.size()].global_disk;
      engine.schedule(e.at, [svc_raw, global] {
        svc_raw->onDiskFailed(global);
      });
    }
  }

  // Real decoded bytes for RobuSTore reads: deterministic original data,
  // streamed through the LT data plane and byte-verified on completion.
  if (robu != nullptr) {
    auto data = std::make_shared<std::vector<std::uint8_t>>(
        acfg.dataBytes());
    Rng fill(plan.seed ^ 0xDA7A11A5ULL);
    for (std::size_t i = 0; i < data->size(); i += 8) {
      const std::uint64_t word = fill();
      for (std::size_t b = 0; b < 8 && i + b < data->size(); ++b) {
        (*data)[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
    robu->attachDataPlane({std::move(data), /*streaming=*/true});
  }

  std::vector<std::unique_ptr<AccessRun>> runs;
  for (std::uint32_t i = 0; i < plan.accesses; ++i) {
    runs.push_back(std::make_unique<AccessRun>());
    runs.back()->outcome.index = i;
  }

  const auto placement_dead_now = [&](std::uint32_t p) {
    return cluster.disk(file.placements[p].global_disk).failed();
  };

  std::function<void(std::uint32_t)> launch;
  launch = [&](std::uint32_t idx) {
    AccessRun& run = *runs[idx];
    run.outcome.started = true;
    run.session.on_complete = [&, idx] {
      AccessRun& r = *runs[idx];
      r.outcome.terminated = true;
      r.outcome.complete = r.session.complete;
      scheme->cancelOutstanding(r.session);
      if (!r.session.complete) {
        // Exemption snapshot at failure time: was the data genuinely
        // unreachable when the access gave up?
        r.outcome.failure_exempt =
            dataUnreachable(plan.scheme, file, placement_dead_now);
      } else if (robu != nullptr && robu->dataPlaneReport().has_value()) {
        const auto& report = *robu->dataPlaneReport();
        r.outcome.data_plane_ran = true;
        r.outcome.data_verified = report.verified;
        r.outcome.symbols_fed = report.symbols_fed;
      }
      if (idx + 1 < plan.accesses) {
        engine.schedule(0.05, [&launch, idx] { launch(idx + 1); });
      }
    };
    scheme->beginRead(run.session, file, acfg);
  };
  engine.schedule(0.0, [&launch] { launch(0); });

  engine.runUntil(plan.deadline);
  // Deterministic quiesce at the deadline: settle every session's tracked
  // reads (an unterminated access stays unterminated — that is the
  // completion invariant's business), then drain in-flight disk work for
  // final byte accounting.
  for (auto& run : runs) {
    if (run->outcome.started) scheme->abortRead(run->session);
  }
  engine.run();

  CampaignResult result;
  Observations& obs = result.observations;
  obs.plan = &plan;
  obs.planned = plannedCounts(plan);
  obs.worst_case_undecodable = worst_case_undecodable;

  for (auto& run : runs) {
    AccessOutcome& oc = run->outcome;
    if (oc.started) {
      oc.metrics = scheme->collect(run->session, file.dataBytes(), file.k);
      oc.corrupt_rejected = run->session.corrupt_rejected;
    }
    obs.accesses.push_back(oc);
  }

  obs.injected_fail_stop = injector.injected(fault::FaultKind::kFailStop);
  obs.injected_crash_recover =
      injector.injected(fault::FaultKind::kCrashRecover);
  obs.injected_stall = injector.injected(fault::FaultKind::kTransientStall);
  obs.injected_slow_disk = injector.injected(fault::FaultKind::kSlowDisk);
  obs.churn_failures = injector.churnFailures();
  obs.churn_replacements = injector.churnReplacements();
  obs.corruptions_injected = injector.corruptionsInjected();

  if (svc) {
    obs.repair_active = true;
    obs.repair = svc->stats();
    obs.pending_repairs = svc->pendingRepairs();
    obs.degraded_placements = svc->degradedPlacements();
    for (const std::uint32_t g : roster) {
      obs.roster_disk_failed.push_back(cluster.disk(g).failed() ? 1 : 0);
      obs.roster_meta_up.push_back(cluster.metadata().diskUp(g) ? 1 : 0);
    }
  }
  obs.corrupt_blocks_left = file.corruptCount();
  obs.stored_bytes = file.totalStoredBlocks() * plan.block_bytes;

  obs.pending_events = engine.pendingEvents();
  obs.clock_monotone = clock_monotone;
  for (std::uint32_t s = 0; s < cluster.numServers(); ++s) {
    obs.links_in_flight += cluster.server(s).link().inFlightBytes();
    obs.server_network_bytes += cluster.server(s).networkBytesTotal();
  }
  if (cluster.clientLink() != nullptr) {
    obs.links_in_flight += cluster.clientLink()->inFlightBytes();
  }
  for (const std::uint32_t g : roster) {
    obs.live_disk_requests += cluster.disk(g).liveRequestCount();
  }
  for (auto& run : runs) {
    obs.live_session_requests += run->session.live_requests;
  }
  obs.end_time = engine.now();

  result.violations = registry.evaluate(obs);

  Fnv1a fnv;
  fnv.mix(plan.seed);
  for (const AccessOutcome& a : obs.accesses) {
    fnv.mix(static_cast<std::uint64_t>(a.index));
    fnv.mix(static_cast<std::uint64_t>(
        (a.started ? 1 : 0) | (a.terminated ? 2 : 0) | (a.complete ? 4 : 0) |
        (a.failure_exempt ? 8 : 0) | (a.data_verified ? 16 : 0)));
    fnv.mix(static_cast<std::uint64_t>(a.metrics.blocks_received));
    fnv.mix(static_cast<std::uint64_t>(a.metrics.failures_survived));
    fnv.mix(static_cast<std::uint64_t>(a.metrics.reissued_requests));
    fnv.mix(static_cast<std::uint64_t>(a.corrupt_rejected));
    fnv.mix(static_cast<std::uint64_t>(a.symbols_fed));
    fnv.mix(a.metrics.latency);
    fnv.mix(static_cast<std::uint64_t>(a.metrics.network_bytes));
  }
  fnv.mix(static_cast<std::uint64_t>(injector.injectedTotal()));
  fnv.mix(static_cast<std::uint64_t>(obs.churn_failures));
  fnv.mix(static_cast<std::uint64_t>(obs.churn_replacements));
  fnv.mix(static_cast<std::uint64_t>(obs.corruptions_injected));
  fnv.mix(obs.repair.repairs_completed);
  fnv.mix(obs.repair.repairs_aborted);
  fnv.mix(obs.repair.blocks_repaired);
  fnv.mix(static_cast<std::uint64_t>(obs.repair.bytes_read));
  fnv.mix(static_cast<std::uint64_t>(obs.repair.bytes_written));
  fnv.mix(static_cast<std::uint64_t>(obs.corrupt_blocks_left));
  fnv.mix(static_cast<std::uint64_t>(obs.server_network_bytes));
  fnv.mix(obs.end_time);
  fnv.mix(engine.stats().scheduled);
  fnv.mix(engine.stats().fired);
  for (const Violation& v : result.violations) {
    fnv.mix(v.invariant);
    fnv.mix(v.detail);
  }
  result.digest = fnv.hash;
  return result;
}

}  // namespace robustore::chaos
