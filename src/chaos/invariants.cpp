#include "chaos/invariants.hpp"

#include <cstdarg>
#include <cstdio>
#include <utility>

namespace robustore::chaos {

namespace {

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// Every started access must have terminated by the deadline (liveness),
/// and a terminated failure is only acceptable when the data was
/// genuinely unreachable at the moment of failure.
void checkCompletion(const Observations& obs, std::vector<Violation>& out) {
  for (const AccessOutcome& a : obs.accesses) {
    if (!a.started) {
      out.push_back({"", format("access %u never started", a.index)});
      continue;
    }
    if (!a.terminated) {
      out.push_back({"", format("access %u still in flight at the deadline "
                                "(aborted, not terminated)",
                                a.index)});
      continue;
    }
    if (!a.complete && !a.failure_exempt) {
      out.push_back(
          {"", format("access %u failed although its data was reachable",
                      a.index)});
    }
  }
}

/// An acked (complete) read must have received enough blocks to back its
/// answer, and a RobuSTore read with the data plane attached must have
/// byte-verified the decode.
void checkAckedReads(const Observations& obs, std::vector<Violation>& out) {
  const CampaignPlan& plan = *obs.plan;
  for (const AccessOutcome& a : obs.accesses) {
    if (!a.complete) continue;
    const std::uint32_t k = a.metrics.blocks_original;
    if (plan.scheme == client::SchemeKind::kRaid0 &&
        a.metrics.blocks_received != k) {
      out.push_back({"", format("access %u acked with %u/%u blocks", a.index,
                                a.metrics.blocks_received, k)});
    } else if (a.metrics.blocks_received < k) {
      out.push_back({"", format("access %u acked with %u < k=%u blocks",
                                a.index, a.metrics.blocks_received, k)});
    }
    if (plan.scheme == client::SchemeKind::kRobuStore) {
      if (!a.data_plane_ran) {
        out.push_back(
            {"", format("access %u completed without a data-plane report",
                        a.index)});
      } else if (!a.data_verified) {
        out.push_back(
            {"", format("access %u decoded bytes differ from the original",
                        a.index)});
      } else if (a.symbols_fed < k) {
        out.push_back({"", format("access %u decoded from %u < k=%u symbols",
                                  a.index, a.symbols_fed, k)});
      }
    }
  }
}

/// Byte conservation: after the drain no link holds bytes in flight, a
/// complete access moved at least its data size and at most every stored
/// block once per allowed attempt, and the servers' total traffic covers
/// everything the accesses claim to have moved.
void checkConservation(const Observations& obs, std::vector<Violation>& out) {
  const CampaignPlan& plan = *obs.plan;
  if (obs.links_in_flight != 0) {
    out.push_back({"", format("links still carry %llu bytes after the drain",
                              static_cast<unsigned long long>(
                                  obs.links_in_flight))});
  }
  Bytes claimed = 0;
  for (const AccessOutcome& a : obs.accesses) {
    if (!a.started) continue;
    claimed += a.metrics.network_bytes;
    if (!a.complete) continue;
    if (a.metrics.network_bytes < a.metrics.data_bytes) {
      out.push_back(
          {"", format("access %u moved %llu < data %llu bytes", a.index,
                      static_cast<unsigned long long>(a.metrics.network_bytes),
                      static_cast<unsigned long long>(a.metrics.data_bytes))});
    }
    const Bytes ceiling = obs.stored_bytes == 0
                              ? a.metrics.data_bytes *
                                    (1 + plan.access.max_reissues)
                              : obs.stored_bytes *
                                    (1 + plan.access.max_reissues);
    if (a.metrics.network_bytes > ceiling) {
      out.push_back(
          {"", format("access %u moved %llu bytes > ceiling %llu", a.index,
                      static_cast<unsigned long long>(a.metrics.network_bytes),
                      static_cast<unsigned long long>(ceiling))});
    }
  }
  if (obs.server_network_bytes < claimed) {
    out.push_back(
        {"", format("servers report %llu bytes < %llu claimed by accesses",
                    static_cast<unsigned long long>(obs.server_network_bytes),
                    static_cast<unsigned long long>(claimed))});
  }
}

/// The post-deadline drain must leave a fully quiesced system: no queued
/// events, no live disk requests, no live tracked reads.
void checkQuiesce(const Observations& obs, std::vector<Violation>& out) {
  if (obs.pending_events != 0) {
    out.push_back({"", format("%zu events still queued after the drain",
                              obs.pending_events)});
  }
  if (obs.live_disk_requests != 0) {
    out.push_back(
        {"", format("%llu disk requests still live after the drain",
                    static_cast<unsigned long long>(obs.live_disk_requests))});
  }
  if (obs.live_session_requests != 0) {
    out.push_back({"", format("%llu tracked reads still live after the drain",
                              static_cast<unsigned long long>(
                                  obs.live_session_requests))});
  }
}

void checkClock(const Observations& obs, std::vector<Violation>& out) {
  if (!obs.clock_monotone) {
    out.push_back({"", "simulation clock moved backwards"});
  }
}

/// The injection ledger must reconcile exactly against the plan, and the
/// client-side failure/reissue counters must be silent when the plan gave
/// them nothing to react to.
void checkLedger(const Observations& obs, std::vector<Violation>& out) {
  const PlannedCounts& want = obs.planned;
  const auto check = [&](const char* verb, std::uint32_t planned,
                         std::uint32_t fired) {
    if (planned != fired) {
      out.push_back({"", format("%s: planned %u, injected %u", verb, planned,
                                fired)});
    }
  };
  check("fail-stop", want.fail_stop, obs.injected_fail_stop);
  check("crash-recover", want.crash_recover, obs.injected_crash_recover);
  check("stall", want.stall, obs.injected_stall);
  check("slow-disk", want.slow_disk, obs.injected_slow_disk);
  check("churn-fail", want.churn_failures, obs.churn_failures);
  check("churn-replace", want.churn_replacements, obs.churn_replacements);
  check("corrupt-block", want.corruptions, obs.corruptions_injected);

  std::uint32_t failures = 0;
  std::uint32_t reissues = 0;
  std::uint32_t corrupt_rejected = 0;
  for (const AccessOutcome& a : obs.accesses) {
    failures += a.metrics.failures_survived;
    reissues += a.metrics.reissued_requests;
    corrupt_rejected += a.corrupt_rejected;
  }
  const bool any_outage = want.fail_stop + want.crash_recover +
                              want.churn_failures !=
                          0;
  if (!any_outage && failures != 0) {
    out.push_back({"", format("%u failure notifications with no outage in "
                              "the schedule",
                              failures)});
  }
  if (want.corruptions == 0 && want.churn_replacements == 0 &&
      corrupt_rejected != 0) {
    out.push_back({"", format("%u corrupt deliveries with no corruption in "
                              "the schedule",
                              corrupt_rejected)});
  }
  if (obs.plan->events.empty() && reissues != 0) {
    out.push_back(
        {"", format("%u reissues under a fault-free schedule", reissues)});
  }
}

/// The repair service must have restored full redundancy within the run
/// (no degraded placements, no pending jobs, no lingering corruption) and
/// its read traffic must respect the regenerating-repair bound: never
/// more than a naive whole-stripe (k-block) read per completed job.
void checkRepairConvergence(const Observations& obs,
                            std::vector<Violation>& out) {
  if (!obs.repair_active) return;
  const CampaignPlan& plan = *obs.plan;
  if (obs.degraded_placements != 0) {
    out.push_back({"", format("%u placements still degraded at the end",
                              obs.degraded_placements)});
  }
  if (obs.pending_repairs != 0) {
    out.push_back({"", format("%u repair jobs still pending at the end",
                              obs.pending_repairs)});
  }
  if (obs.corrupt_blocks_left != 0) {
    out.push_back(
        {"", format("%llu corrupt blocks never repaired",
                    static_cast<unsigned long long>(
                        obs.corrupt_blocks_left))});
  }
  if (obs.repair.loss_events != 0 && !obs.worst_case_undecodable) {
    out.push_back({"", format("%u loss events although the schedule never "
                              "destroyed enough to lose the file",
                              obs.repair.loss_events)});
  }
  if (obs.repair.repairs_aborted == 0 && obs.repair.repairs_completed > 0) {
    // LT rebuilds may re-read the whole surviving stored set per job;
    // replicated/MDS rebuilds must not exceed a naive k-block decode per
    // rebuilt block (the Dimakis regenerating path — d partial reads of
    // B/(d-k+1) bytes each — comes in strictly under that).
    const Bytes ceiling =
        plan.scheme == client::SchemeKind::kRobuStore
            ? obs.repair.repairs_completed * obs.stored_bytes
            : obs.repair.blocks_repaired * static_cast<Bytes>(plan.k) *
                  plan.block_bytes;
    if (obs.repair.bytes_read > ceiling) {
      out.push_back(
          {"", format("repair read %llu bytes > naive ceiling %llu",
                      static_cast<unsigned long long>(obs.repair.bytes_read),
                      static_cast<unsigned long long>(ceiling))});
    }
  }
}

/// The metadata server's liveness view must agree with the hardware at
/// the end of the run (campaigns schedule every replacement well before
/// the deadline).
void checkMetadataLiveness(const Observations& obs,
                           std::vector<Violation>& out) {
  for (std::size_t i = 0; i < obs.roster_disk_failed.size(); ++i) {
    const bool failed = obs.roster_disk_failed[i] != 0;
    const bool up = i < obs.roster_meta_up.size() && obs.roster_meta_up[i] != 0;
    if (failed == up) {
      out.push_back({"", format("roster disk %zu: hardware %s but metadata "
                                "says %s",
                                i, failed ? "failed" : "up",
                                up ? "up" : "down")});
    }
  }
}

}  // namespace

void InvariantRegistry::add(std::string name, CheckFn check) {
  entries_.push_back({std::move(name), std::move(check)});
}

std::vector<Violation> InvariantRegistry::evaluate(
    const Observations& obs) const {
  std::vector<Violation> violations;
  for (const Entry& entry : entries_) {
    std::vector<Violation> local;
    entry.check(obs, local);
    for (Violation& v : local) {
      v.invariant = entry.name;
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

std::vector<std::string> InvariantRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.name);
  return out;
}

const InvariantRegistry& InvariantRegistry::standard() {
  static const InvariantRegistry registry = [] {
    InvariantRegistry r;
    r.add("completion", checkCompletion);
    r.add("acked-read", checkAckedReads);
    r.add("conservation", checkConservation);
    r.add("quiesce", checkQuiesce);
    r.add("clock-monotone", checkClock);
    r.add("ledger", checkLedger);
    r.add("repair-convergence", checkRepairConvergence);
    r.add("metadata-liveness", checkMetadataLiveness);
    return r;
  }();
  return registry;
}

PlannedCounts plannedCounts(const CampaignPlan& plan) {
  PlannedCounts counts;
  for (const ChaosEvent& e : plan.events) {
    switch (e.verb) {
      case ChaosVerb::kFailStop:
        ++counts.fail_stop;
        break;
      case ChaosVerb::kCrashRecover:
        ++counts.crash_recover;
        break;
      case ChaosVerb::kStall:
        ++counts.stall;
        break;
      case ChaosVerb::kSlowDisk:
        ++counts.slow_disk;
        break;
      case ChaosVerb::kChurnFail:
        ++counts.churn_failures;
        break;
      case ChaosVerb::kChurnReplace:
        ++counts.churn_replacements;
        break;
      case ChaosVerb::kCorruptBlock:
        ++counts.corruptions;
        break;
    }
  }
  return counts;
}

}  // namespace robustore::chaos
