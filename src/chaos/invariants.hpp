#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "metrics/metrics.hpp"
#include "repair/repair.hpp"

namespace robustore::chaos {

/// What one access of the campaign did, recorded by the runner. The
/// split between `terminated` and `complete` matters: an access whose
/// completion hook never fired (aborted at the deadline mid-flight) is a
/// liveness violation even though nothing was "wrong" with its data.
struct AccessOutcome {
  std::uint32_t index = 0;
  bool started = false;
  /// Completion hook fired (successfully or as a failure) before the
  /// deadline abort.
  bool terminated = false;
  bool complete = false;
  /// The failure is excused: at the moment it was declared, the data was
  /// genuinely unreachable (dead/corrupt placements made the file
  /// undecodable), so failing was the correct answer.
  bool failure_exempt = false;
  std::uint32_t corrupt_rejected = 0;
  /// RobuSTore data plane (real decoded bytes) for completed reads.
  bool data_plane_ran = false;
  bool data_verified = false;
  std::uint32_t symbols_fed = 0;
  metrics::AccessMetrics metrics;
};

/// Event counts derived from the plan, per verb (what *should* have been
/// injected — the other side of the injector's ledger).
struct PlannedCounts {
  std::uint32_t fail_stop = 0;
  std::uint32_t crash_recover = 0;
  std::uint32_t stall = 0;
  std::uint32_t slow_disk = 0;
  std::uint32_t churn_failures = 0;
  std::uint32_t churn_replacements = 0;
  std::uint32_t corruptions = 0;
};

/// Everything the invariant registry looks at: the campaign's plan, the
/// per-access outcomes, the injection/repair ledgers, and the end-of-run
/// system state snapshot. Collected by runCampaign() after the
/// post-deadline drain.
struct Observations {
  const CampaignPlan* plan = nullptr;
  std::vector<AccessOutcome> accesses;
  PlannedCounts planned;

  // Injector ledger (what actually fired).
  std::uint32_t injected_fail_stop = 0;
  std::uint32_t injected_crash_recover = 0;
  std::uint32_t injected_stall = 0;
  std::uint32_t injected_slow_disk = 0;
  std::uint32_t churn_failures = 0;
  std::uint32_t churn_replacements = 0;
  std::uint32_t corruptions_injected = 0;

  // Repair service (absent for RAID-0 campaigns).
  bool repair_active = false;
  repair::RepairStats repair;
  std::uint32_t pending_repairs = 0;
  std::uint32_t degraded_placements = 0;
  std::uint64_t corrupt_blocks_left = 0;
  /// Full stored footprint of the protected file (bytes) — the ceiling
  /// of any single repair job's read traffic.
  Bytes stored_bytes = 0;
  /// The planned destructive set, applied all at once to the original
  /// file, leaves it undecodable. When true, a repair loss event (and
  /// the external restore it triggers) is the *expected* outcome, not a
  /// convergence failure.
  bool worst_case_undecodable = false;

  // End-of-run system snapshot (taken after the drain).
  std::size_t pending_events = 0;
  bool clock_monotone = true;
  Bytes links_in_flight = 0;
  std::uint64_t live_disk_requests = 0;
  std::uint64_t live_session_requests = 0;
  /// Sum of per-server network byte totals (all streams).
  Bytes server_network_bytes = 0;
  /// Per roster disk at end: hardware state vs metadata liveness bit.
  std::vector<std::uint8_t> roster_disk_failed;
  std::vector<std::uint8_t> roster_meta_up;
  SimTime end_time = 0.0;
};

/// One invariant breach. `invariant` is the registry name; `detail` is a
/// human-readable account with the numbers that disagreed.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Named end-to-end checks evaluated against a campaign's Observations.
/// The standard() registry carries the full battery; tests register
/// subsets or extras through add().
class InvariantRegistry {
 public:
  using CheckFn =
      std::function<void(const Observations&, std::vector<Violation>&)>;

  void add(std::string name, CheckFn check);

  /// Runs every check in registration order; each violation is stamped
  /// with its check's name.
  [[nodiscard]] std::vector<Violation> evaluate(
      const Observations& obs) const;

  [[nodiscard]] std::vector<std::string> names() const;

  /// The built-in battery: completion, acked-read, conservation, quiesce,
  /// clock-monotone, ledger, repair-convergence, metadata-liveness.
  [[nodiscard]] static const InvariantRegistry& standard();

 private:
  struct Entry {
    std::string name;
    CheckFn check;
  };
  std::vector<Entry> entries_;
};

/// Tallies the plan's events into per-verb expected injection counts.
[[nodiscard]] PlannedCounts plannedCounts(const CampaignPlan& plan);

}  // namespace robustore::chaos
