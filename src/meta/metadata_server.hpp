#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "coding/lt_graph.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace robustore::meta {

/// Quality-of-service options an application passes to open() — the
/// Appendix B dimensions: traffic profile plus performance requirements.
struct QosOptions {
  /// Minimum sustained access bandwidth, bytes/second (0 = best effort).
  double min_bandwidth = 0.0;
  /// Upper bound on acceptable mean access latency (0 = unconstrained).
  SimTime max_latency = 0.0;
  /// Acceptable relative latency variation (stddev/mean; 0 = don't care).
  double max_latency_variation = 0.0;
  /// Requested degree of data redundancy (writes; 0 = system default).
  double redundancy = 0.0;
  /// Storage capacity to reserve for the file (writes).
  Bytes reserve_bytes = 0;
  /// Expected number of simultaneous readers.
  std::uint32_t simultaneous_accesses = 1;
};

enum class AccessType : std::uint8_t { kRead, kWrite };
enum class CodingScheme : std::uint8_t { kNone, kReplication, kLtCode };

/// Static + dynamic information about one storage device (§4.2: capacity
/// and peak performance registered at join time; load and availability
/// refreshed from client reports and periodic queries).
struct DiskRecord {
  std::uint32_t global_disk = 0;
  std::uint32_t site = 0;  // geographic site (filer) for path diversity
  Bytes capacity = 400 * kGiB;
  Bytes used = 0;
  double peak_bandwidth = mbps(50.0);
  /// Exponentially weighted recent utilisation in [0, 1].
  double recent_load = 0.0;
  /// Long-term availability of the hosting server in [0, 1].
  double availability = 0.99;
  SimTime last_report = 0.0;
  /// Instantaneous liveness (periodic queries / churn notifications).
  /// The repair service's scan reads this to detect lost placements.
  bool up = true;

  [[nodiscard]] double freeFraction() const {
    return capacity == 0
               ? 0.0
               : 1.0 - static_cast<double>(used) / static_cast<double>(capacity);
  }
};

/// Per-file metadata (§4.2): identity, size, coding scheme and
/// parameters, placement summary, owner, and lock state.
struct FileRecord {
  std::string name;
  std::uint64_t file_id = 0;
  Bytes size = 0;
  Bytes block_bytes = 0;
  std::uint32_t k = 0;
  CodingScheme coding = CodingScheme::kNone;
  coding::LtParams lt;
  std::string owner;
  /// (disk, stored block count) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> locations;
  std::uint32_t readers = 0;
  bool writer_locked = false;
};

/// Descriptor returned by open(): everything a client needs to plan the
/// access (§4.3.1: "data location, coding algorithm, coding parameters,
/// and data offset").
struct FileDescriptor {
  std::uint64_t handle = 0;
  std::uint64_t file_id = 0;
  AccessType type = AccessType::kRead;
  CodingScheme coding = CodingScheme::kNone;
  coding::LtParams lt;
  Bytes size = 0;
  Bytes block_bytes = 0;
  std::uint32_t k = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> locations;
};

/// Outcome of an open() attempt.
enum class OpenStatus : std::uint8_t {
  kOk,
  kNotFound,        // read of an unknown file
  kAlreadyExists,   // exclusive create of an existing file
  kLockConflict,    // writer present (reads) or any user present (writes)
  kNoCapacity,      // reservation cannot be satisfied
};

/// In-memory metadata service (§4.2). A single logical server: the paper
/// argues one well-designed metadata server suffices because it is only
/// touched at open/close. The constant per-operation latency is charged
/// by the *client* simulation (AccessConfig::metadata_latency); this class
/// is pure bookkeeping so it can also serve non-simulated tooling.
class MetadataServer {
 public:
  MetadataServer() = default;

  // --- storage-server registry -------------------------------------------
  void registerDisk(const DiskRecord& record);
  [[nodiscard]] std::size_t numDisks() const { return disks_.size(); }
  [[nodiscard]] const DiskRecord* disk(std::uint32_t global_disk) const;
  [[nodiscard]] const std::unordered_map<std::uint32_t, DiskRecord>& disks()
      const {
    return disks_;
  }

  /// Client access reports fold into the EWMA load (§4.2: dynamic info
  /// "may come from the client accesses").
  void reportLoad(std::uint32_t global_disk, double utilization, SimTime now);
  /// Write commits consume capacity.
  void addUsage(std::uint32_t global_disk, Bytes bytes);

  /// Availability updates (churn notifications / periodic queries).
  void setDiskUp(std::uint32_t global_disk, bool up) {
    auto it = disks_.find(global_disk);
    if (it != disks_.end()) it->second.up = up;
  }
  [[nodiscard]] bool diskUp(std::uint32_t global_disk) const {
    auto it = disks_.find(global_disk);
    return it != disks_.end() && it->second.up;
  }

  /// §5.3.1 disk selection: prefers lightly loaded disks with free space,
  /// spreads across sites, and mixes availability classes. `count` disks
  /// are returned, deterministically given `rng`.
  [[nodiscard]] std::vector<std::uint32_t> selectDisks(
      std::uint32_t count, const QosOptions& qos, Rng& rng) const;

  // --- namespace and locking ----------------------------------------------
  /// Opens (or, for writes, creates) a file. Reads take a shared lock,
  /// writes an exclusive lock; conflicting opens fail with kLockConflict.
  [[nodiscard]] OpenStatus open(const std::string& name, AccessType type,
                                const QosOptions& qos, FileDescriptor* out);

  /// Registers the final data structure + location after a write
  /// completes (§4.3.2 step: "register the data structure and location").
  void registerFile(std::uint64_t handle, Bytes size, Bytes block_bytes,
                    std::uint32_t k, CodingScheme coding,
                    const coding::LtParams& lt,
                    std::vector<std::pair<std::uint32_t, std::uint32_t>>
                        locations);

  /// Releases the lock taken by open(). Unknown handles are ignored.
  void close(std::uint64_t handle);

  [[nodiscard]] bool exists(const std::string& name) const {
    return files_.contains(name);
  }
  [[nodiscard]] const FileRecord* file(const std::string& name) const;
  [[nodiscard]] std::size_t openHandles() const { return handles_.size(); }

  /// Deletes a file (must be unlocked); frees its reserved capacity.
  bool remove(const std::string& name);

 private:
  struct Handle {
    std::string name;
    AccessType type;
  };

  std::unordered_map<std::uint32_t, DiskRecord> disks_;
  std::unordered_map<std::string, FileRecord> files_;
  std::unordered_map<std::uint64_t, Handle> handles_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t next_file_id_ = 1;
};

}  // namespace robustore::meta
