#include "meta/metadata_server.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/expects.hpp"

namespace robustore::meta {

void MetadataServer::registerDisk(const DiskRecord& record) {
  disks_[record.global_disk] = record;
}

const DiskRecord* MetadataServer::disk(std::uint32_t global_disk) const {
  const auto it = disks_.find(global_disk);
  return it == disks_.end() ? nullptr : &it->second;
}

void MetadataServer::reportLoad(std::uint32_t global_disk, double utilization,
                                SimTime now) {
  auto it = disks_.find(global_disk);
  if (it == disks_.end()) return;
  DiskRecord& d = it->second;
  // EWMA with a half-life of roughly three reports: responsive to load
  // shifts but stable against single noisy accesses.
  constexpr double kAlpha = 0.25;
  d.recent_load = (1.0 - kAlpha) * d.recent_load +
                  kAlpha * std::clamp(utilization, 0.0, 1.0);
  d.last_report = now;
}

void MetadataServer::addUsage(std::uint32_t global_disk, Bytes bytes) {
  auto it = disks_.find(global_disk);
  if (it == disks_.end()) return;
  it->second.used = std::min(it->second.capacity, it->second.used + bytes);
}

std::vector<std::uint32_t> MetadataServer::selectDisks(std::uint32_t count,
                                                       const QosOptions& qos,
                                                       Rng& rng) const {
  ROBUSTORE_EXPECTS(count >= 1, "selection of zero disks");
  ROBUSTORE_EXPECTS(count <= disks_.size(), "more disks requested than known");

  // Score each candidate per §5.3.1: lightly loaded first, then free
  // space; a small random perturbation breaks ties so repeated accesses
  // do not all converge on the same disks.
  struct Candidate {
    std::uint32_t id;
    std::uint32_t site;
    double availability;
    double score;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(disks_.size());
  const Bytes per_disk_reserve =
      qos.reserve_bytes > 0 ? qos.reserve_bytes / count + 1 : 0;
  for (const auto& [id, d] : disks_) {
    if (per_disk_reserve > 0 &&
        d.used + per_disk_reserve > d.capacity) {
      continue;  // cannot hold its share of the reservation
    }
    const double score = 0.6 * (1.0 - d.recent_load) +
                         0.3 * d.freeFraction() + 0.1 * rng.uniform();
    candidates.push_back(Candidate{id, d.site, d.availability, score});
  }
  ROBUSTORE_EXPECTS(candidates.size() >= count,
                    "not enough capacity-feasible disks");
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  // Greedy pick with two §5.3.1 diversity rules: spread across sites (so
  // flows take different network paths / disaster domains) and mix
  // availability classes (never exhaust only the high-availability pool).
  std::vector<std::uint32_t> picked;
  std::unordered_map<std::uint32_t, std::uint32_t> per_site;
  std::uint32_t high_avail = 0;
  const auto siteQuota = [&](std::uint32_t site) {
    // Allow ceil(count / distinct_sites) + 1 per site.
    std::unordered_set<std::uint32_t> sites;
    for (const auto& c : candidates) sites.insert(c.site);
    const auto quota =
        (count + static_cast<std::uint32_t>(sites.size()) - 1) /
            static_cast<std::uint32_t>(sites.size()) +
        1;
    (void)site;
    return quota;
  };
  const std::uint32_t quota = siteQuota(0);

  for (int pass = 0; pass < 2 && picked.size() < count; ++pass) {
    for (const auto& c : candidates) {
      if (picked.size() >= count) break;
      if (std::find(picked.begin(), picked.end(), c.id) != picked.end()) {
        continue;
      }
      if (pass == 0) {  // diversity-constrained pass
        if (per_site[c.site] >= quota) continue;
        const bool is_high = c.availability >= 0.99;
        // Keep high-availability picks at no more than ~2/3 of the set.
        if (is_high && 3 * (high_avail + 1) > 2 * (count + 2)) continue;
        if (is_high) ++high_avail;
      }
      ++per_site[c.site];
      picked.push_back(c.id);
    }
  }
  ROBUSTORE_EXPECTS(picked.size() == count, "selection fell short");
  return picked;
}

OpenStatus MetadataServer::open(const std::string& name, AccessType type,
                                const QosOptions& qos, FileDescriptor* out) {
  auto it = files_.find(name);
  if (type == AccessType::kRead) {
    if (it == files_.end()) return OpenStatus::kNotFound;
    FileRecord& f = it->second;
    if (f.writer_locked) return OpenStatus::kLockConflict;
    ++f.readers;
  } else {
    if (it == files_.end()) {
      // Create: check the reservation against total free capacity.
      if (qos.reserve_bytes > 0) {
        Bytes free_total = 0;
        for (const auto& [id, d] : disks_) free_total += d.capacity - d.used;
        if (qos.reserve_bytes > free_total) return OpenStatus::kNoCapacity;
      }
      FileRecord f;
      f.name = name;
      f.file_id = next_file_id_++;
      f.writer_locked = true;
      it = files_.emplace(name, std::move(f)).first;
    } else {
      FileRecord& f = it->second;
      if (f.writer_locked || f.readers > 0) return OpenStatus::kLockConflict;
      f.writer_locked = true;
    }
  }

  const FileRecord& f = it->second;
  if (out != nullptr) {
    out->handle = next_handle_;
    out->file_id = f.file_id;
    out->type = type;
    out->coding = f.coding;
    out->lt = f.lt;
    out->size = f.size;
    out->block_bytes = f.block_bytes;
    out->k = f.k;
    out->locations = f.locations;
  }
  handles_.emplace(next_handle_, Handle{name, type});
  ++next_handle_;
  return OpenStatus::kOk;
}

void MetadataServer::registerFile(
    std::uint64_t handle, Bytes size, Bytes block_bytes, std::uint32_t k,
    CodingScheme coding, const coding::LtParams& lt,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> locations) {
  const auto hit = handles_.find(handle);
  ROBUSTORE_EXPECTS(hit != handles_.end(), "registerFile on unknown handle");
  ROBUSTORE_EXPECTS(hit->second.type == AccessType::kWrite,
                    "registerFile needs a write handle");
  auto fit = files_.find(hit->second.name);
  ROBUSTORE_EXPECTS(fit != files_.end(), "registerFile on missing record");
  FileRecord& f = fit->second;
  // Rewrites replace the old placement: release its capacity first.
  for (const auto& [disk_id, blocks] : f.locations) {
    auto dit = disks_.find(disk_id);
    if (dit != disks_.end()) {
      const Bytes bytes = static_cast<Bytes>(blocks) * f.block_bytes;
      dit->second.used -= std::min(dit->second.used, bytes);
    }
  }
  f.size = size;
  f.block_bytes = block_bytes;
  f.k = k;
  f.coding = coding;
  f.lt = lt;
  f.locations = std::move(locations);
  for (const auto& [disk_id, blocks] : f.locations) {
    addUsage(disk_id, static_cast<Bytes>(blocks) * block_bytes);
  }
}

void MetadataServer::close(std::uint64_t handle) {
  const auto hit = handles_.find(handle);
  if (hit == handles_.end()) return;
  auto fit = files_.find(hit->second.name);
  if (fit != files_.end()) {
    if (hit->second.type == AccessType::kRead) {
      if (fit->second.readers > 0) --fit->second.readers;
    } else {
      fit->second.writer_locked = false;
    }
  }
  handles_.erase(hit);
}

const FileRecord* MetadataServer::file(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

bool MetadataServer::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return false;
  const FileRecord& f = it->second;
  if (f.readers > 0 || f.writer_locked) return false;
  for (const auto& [disk_id, blocks] : f.locations) {
    auto dit = disks_.find(disk_id);
    if (dit != disks_.end()) {
      const Bytes bytes = static_cast<Bytes>(blocks) * f.block_bytes;
      dit->second.used -= std::min(dit->second.used, bytes);
    }
  }
  files_.erase(it);
  return true;
}

}  // namespace robustore::meta
