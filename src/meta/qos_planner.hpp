#pragma once

#include <cstdint>

#include "meta/metadata_server.hpp"

namespace robustore::meta {

/// Access plan derived from QoS requirements (Appendix B open(): "plans
/// an access schedule based on these information and the application QoS
/// requirements").
struct AccessPlan {
  std::uint32_t num_disks = 1;
  double redundancy = 0.0;
};

/// Capability summary of the registered disks, as the planner sees them:
/// effective bandwidth = registered peak x (1 - recent load).
struct FleetEstimate {
  double average_bandwidth = 0.0;  // bytes/s
  double peak_bandwidth = 0.0;     // bytes/s
  std::uint32_t num_disks = 0;
};

/// Summarises the registry for planning.
[[nodiscard]] FleetEstimate estimateFleet(const MetadataServer& metadata);

/// The paper's two sizing rules, §5.3.1/§5.3.2:
///
///  * number of disks >= expected total access bandwidth / average disk
///    bandwidth (scaled by the reception overhead: coded reads move
///    (1+eps)x the data);
///  * degree of redundancy D = (1+eps) * (peak disk bandwidth / average
///    disk bandwidth) - 1 — just enough blocks everywhere that the
///    fastest disk never runs dry during a read.
///
/// `qos.redundancy`, when set, acts as a floor (the application may want
/// more for reliability).
[[nodiscard]] AccessPlan planAccess(const QosOptions& qos,
                                    const FleetEstimate& fleet,
                                    double reception_overhead = 0.5);

}  // namespace robustore::meta
