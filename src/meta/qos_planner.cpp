#include "meta/qos_planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace robustore::meta {

FleetEstimate estimateFleet(const MetadataServer& metadata) {
  FleetEstimate fleet;
  for (const auto& [id, d] : metadata.disks()) {
    const double effective = d.peak_bandwidth * (1.0 - d.recent_load);
    fleet.average_bandwidth += effective;
    fleet.peak_bandwidth = std::max(fleet.peak_bandwidth, effective);
    ++fleet.num_disks;
  }
  if (fleet.num_disks > 0) fleet.average_bandwidth /= fleet.num_disks;
  return fleet;
}

AccessPlan planAccess(const QosOptions& qos, const FleetEstimate& fleet,
                      double reception_overhead) {
  ROBUSTORE_EXPECTS(reception_overhead >= 0, "negative reception overhead");
  AccessPlan plan;

  // Disk count: enough aggregate bandwidth to meet the requirement while
  // moving (1 + eps)x the useful bytes.
  if (qos.min_bandwidth > 0 && fleet.average_bandwidth > 0) {
    const double needed = qos.min_bandwidth * (1.0 + reception_overhead) /
                          fleet.average_bandwidth;
    plan.num_disks = static_cast<std::uint32_t>(std::ceil(needed));
  }
  plan.num_disks =
      std::clamp<std::uint32_t>(plan.num_disks, 1,
                                std::max<std::uint32_t>(1, fleet.num_disks));

  // Redundancy: D = (1+eps) * peak/avg - 1 (§5.3.2), floored by what the
  // application asked for.
  double d = 0.0;
  if (fleet.average_bandwidth > 0 && fleet.peak_bandwidth > 0) {
    d = (1.0 + reception_overhead) *
            (fleet.peak_bandwidth / fleet.average_bandwidth) -
        1.0;
  }
  plan.redundancy = std::max({d, qos.redundancy, 0.0});
  return plan;
}

}  // namespace robustore::meta
