#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace robustore::trace {

class FlightRecorder;

/// The latency stages of an access (§6.2.3's decomposition: where does
/// access time go?). Every span the instrumentation emits is either one
/// of these stages or a named event outside the taxonomy (fault.*,
/// scheme-specific markers).
enum class Stage : std::uint8_t {
  kDiskQueueWait,  // submit -> service start (queueing behind other work)
  kDiskOverhead,   // command overhead + track switches
  kDiskSeek,       // head positioning
  kDiskRotate,     // rotational delay
  kDiskTransfer,   // media transfer
  kNetTransfer,    // NIC serialisation + one-way latency
  kServerForward,  // client request issue -> filer dispatch decision
  kClientDecode,   // LT decode tail after the last arrival
  kClientReissue,  // backoff window before a failure-triggered re-issue
};

inline constexpr std::size_t kNumStages = 9;
inline constexpr std::uint8_t kNoStage = 0xff;
inline constexpr std::uint32_t kNoDisk = ~std::uint32_t{0};

[[nodiscard]] const char* stageName(Stage stage);

/// Display tracks (Chrome trace_event "threads"): one per disk, one per
/// server NIC, one for the client and one for fault injection, so a
/// single access renders as parallel swim lanes.
inline constexpr std::uint32_t kClientTrack = 0;
inline constexpr std::uint32_t kFaultTrack = 1;
inline constexpr std::uint32_t kClientLinkTrack = 2;
/// Telemetry counter series (queue depths, decoder progress...) render on
/// their own lane; Perfetto additionally groups counter events by name.
inline constexpr std::uint32_t kTelemetryTrack = 3;
[[nodiscard]] constexpr std::uint32_t diskTrack(std::uint32_t disk) {
  return 10 + disk;
}
[[nodiscard]] constexpr std::uint32_t serverNicTrack(std::uint32_t server) {
  return 5000 + server;
}

/// Per-access sum of span time (and span count) per stage — the paper's
/// latency decomposition, folded through AccessMetrics into the bench
/// reports.
struct StageBreakdown {
  double seconds[kNumStages] = {};
  std::uint32_t spans[kNumStages] = {};

  void addSpan(Stage stage, double duration) {
    seconds[static_cast<std::size_t>(stage)] += duration;
    ++spans[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] double stageSeconds(Stage stage) const {
    return seconds[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] std::uint32_t stageSpans(Stage stage) const {
    return spans[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] bool empty() const {
    for (const auto s : spans) {
      if (s != 0) return false;
    }
    return true;
  }
  StageBreakdown& operator+=(const StageBreakdown& other) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      seconds[i] += other.seconds[i];
      spans[i] += other.spans[i];
    }
    return *this;
  }
};

/// One recorded span, instant, or counter sample. `name` must point at
/// storage that outlives the record: string literals / stageName for
/// spans and instants, the owning tracer's intern pool for counters —
/// records are plain data, never owners.
struct Record {
  const char* name = "";
  std::uint8_t stage = kNoStage;  // Stage index, or kNoStage for named events
  bool instant = false;
  /// Counter sample (Chrome trace_event "C" phase): `value` at `begin`.
  bool counter = false;
  double value = 0.0;
  SimTime begin = 0.0;
  SimTime end = 0.0;
  /// Access (stream) id the record belongs to; 0 = system-wide.
  std::uint64_t access = 0;
  /// Display track (see diskTrack / serverNicTrack).
  std::uint32_t track = kClientTrack;
  /// Global disk id when the record is about one disk, else kNoDisk.
  std::uint32_t disk = kNoDisk;
  /// Free-form correlation key (disk request handle, block position...).
  std::uint64_t ref = 0;
};

/// Sim-time-aware structured tracer. Owned by the trial (one tracer per
/// engine): components hold a `Tracer*` that is null when tracing is off,
/// so every instrumentation site is a single pointer test on the hot
/// path. Timestamps are passed in explicitly — the tracer knows nothing
/// about the engine, which keeps `trace` a leaf module.
///
/// Determinism: records are appended in event-execution order, which the
/// engine already makes deterministic; the tracer draws no randomness and
/// per-trial tracers merge in trial order (append()), so traced output is
/// byte-identical for any thread count.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Attaches a flight recorder that sees every span/instant this tracer
  /// is offered — even when the tracer itself is disabled (a disabled
  /// tracer with a sink is the always-on recorder mode: existing
  /// `if (tracer_)` instrumentation sites feed the ring without the
  /// tracer allocating records). counter() samples are not forwarded —
  /// they are system-wide series, not per-access events.
  void setSink(FlightRecorder* sink) { sink_ = sink; }
  [[nodiscard]] FlightRecorder* sink() const { return sink_; }

  void span(Stage stage, SimTime begin, SimTime end, std::uint64_t access,
            std::uint32_t track, std::uint32_t disk = kNoDisk,
            std::uint64_t ref = 0);
  /// Span outside the stage taxonomy (e.g. the whole-access envelope).
  void namedSpan(const char* name, SimTime begin, SimTime end,
                 std::uint64_t access, std::uint32_t track,
                 std::uint32_t disk = kNoDisk, std::uint64_t ref = 0);
  void instant(const char* name, SimTime at, std::uint64_t access,
               std::uint32_t track, std::uint32_t disk = kNoDisk,
               std::uint64_t ref = 0);

  /// One counter sample: `name` at time `at` had `value`. The exporter
  /// turns these into Chrome trace_event counter tracks. `name` follows
  /// the Record storage contract — pass intern() results for names built
  /// at runtime (telemetry series names).
  void counter(const char* name, SimTime at, double value,
               std::uint32_t track = kTelemetryTrack);

  /// Copies `name` into the tracer-owned name pool and returns a pointer
  /// that stays valid for the tracer's lifetime (deduplicated). This is
  /// how dynamically-built record names satisfy the Record storage
  /// contract; append() re-interns, so merged records never dangle.
  const char* intern(std::string_view name);

  /// Appends another tracer's records after this one's (trial-order
  /// merge; ordering is the caller's contract). Every copied record's
  /// name is re-interned into this tracer's pool, so the source tracer
  /// may be destroyed afterwards.
  void append(const Tracer& other);

  /// Sums span time per stage for one access (0 = every access).
  [[nodiscard]] StageBreakdown breakdown(std::uint64_t access = 0) const;

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  bool enabled_ = true;
  FlightRecorder* sink_ = nullptr;
  std::vector<Record> records_;
  /// Name intern pool: deque for stable storage, the map for dedup. Keys
  /// are views into the pooled strings themselves.
  std::deque<std::string> name_pool_;
  std::unordered_map<std::string_view, const char*> interned_;
};

}  // namespace robustore::trace
