#include "trace/trace.hpp"

#include "common/expects.hpp"
#include "trace/flight_recorder.hpp"

namespace robustore::trace {

const char* stageName(Stage stage) {
  switch (stage) {
    case Stage::kDiskQueueWait:
      return "disk.queue_wait";
    case Stage::kDiskOverhead:
      return "disk.overhead";
    case Stage::kDiskSeek:
      return "disk.seek";
    case Stage::kDiskRotate:
      return "disk.rotate";
    case Stage::kDiskTransfer:
      return "disk.transfer";
    case Stage::kNetTransfer:
      return "net.transfer";
    case Stage::kServerForward:
      return "server.forward";
    case Stage::kClientDecode:
      return "client.decode";
    case Stage::kClientReissue:
      return "client.reissue";
  }
  return "?";
}

void Tracer::span(Stage stage, SimTime begin, SimTime end,
                  std::uint64_t access, std::uint32_t track,
                  std::uint32_t disk, std::uint64_t ref) {
  if (sink_ != nullptr) sink_->onSpan(stage, begin, end, access, disk);
  if (!enabled_) return;
  ROBUSTORE_EXPECTS(end >= begin, "span ends before it begins");
  Record r;
  r.name = stageName(stage);
  r.stage = static_cast<std::uint8_t>(stage);
  r.begin = begin;
  r.end = end;
  r.access = access;
  r.track = track;
  r.disk = disk;
  r.ref = ref;
  records_.push_back(r);
}

void Tracer::namedSpan(const char* name, SimTime begin, SimTime end,
                       std::uint64_t access, std::uint32_t track,
                       std::uint32_t disk, std::uint64_t ref) {
  if (sink_ != nullptr) sink_->onNamedSpan(name, begin, end, access, disk);
  if (!enabled_) return;
  ROBUSTORE_EXPECTS(end >= begin, "span ends before it begins");
  Record r;
  r.name = name;
  r.begin = begin;
  r.end = end;
  r.access = access;
  r.track = track;
  r.disk = disk;
  r.ref = ref;
  records_.push_back(r);
}

void Tracer::instant(const char* name, SimTime at, std::uint64_t access,
                     std::uint32_t track, std::uint32_t disk,
                     std::uint64_t ref) {
  if (sink_ != nullptr) sink_->onInstant(name, at, access, disk);
  if (!enabled_) return;
  Record r;
  r.name = name;
  r.instant = true;
  r.begin = at;
  r.end = at;
  r.access = access;
  r.track = track;
  r.disk = disk;
  r.ref = ref;
  records_.push_back(r);
}

void Tracer::counter(const char* name, SimTime at, double value,
                     std::uint32_t track) {
  if (!enabled_) return;
  Record r;
  r.name = name;
  r.counter = true;
  r.value = value;
  r.begin = at;
  r.end = at;
  r.track = track;
  records_.push_back(r);
}

const char* Tracer::intern(std::string_view name) {
  if (const auto it = interned_.find(name); it != interned_.end()) {
    return it->second;
  }
  const std::string& pooled = name_pool_.emplace_back(name);
  interned_.emplace(std::string_view(pooled), pooled.c_str());
  return pooled.c_str();
}

void Tracer::append(const Tracer& other) {
  if (!enabled_) return;
  records_.reserve(records_.size() + other.records_.size());
  for (Record r : other.records_) {
    // Re-intern: the copied record may point into the source tracer's
    // name pool, which dies with it. Static names round-trip unchanged.
    r.name = intern(r.name);
    records_.push_back(r);
  }
}

StageBreakdown Tracer::breakdown(std::uint64_t access) const {
  StageBreakdown out;
  for (const Record& r : records_) {
    if (r.instant || r.stage == kNoStage) continue;
    if (access != 0 && r.access != access) continue;
    out.addSpan(static_cast<Stage>(r.stage), r.end - r.begin);
  }
  return out;
}

}  // namespace robustore::trace
