#pragma once

#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace robustore::trace {

/// Serialises a tracer to Chrome `trace_event` JSON (the format Perfetto
/// and chrome://tracing load): one process per access, one thread per
/// display track, complete ("X") events for spans and "i" events for
/// instants. Timestamps are microseconds with fixed 3-decimal formatting,
/// so equal inputs serialise byte-identically. `access` filters to one
/// access id (0 = everything the tracer recorded).
[[nodiscard]] std::string toChromeTraceJson(const Tracer& tracer,
                                            std::uint64_t access = 0);

/// Writes toChromeTraceJson to `path`; false on I/O failure.
[[nodiscard]] bool writeChromeTraceJson(const Tracer& tracer,
                                        const std::string& path,
                                        std::uint64_t access = 0);

/// Minimal structural JSON validator (objects, arrays, strings, numbers,
/// literals). Backs the trace smoke test and the CLI's self-check; not a
/// general-purpose parser.
[[nodiscard]] bool validJson(std::string_view text);

}  // namespace robustore::trace
