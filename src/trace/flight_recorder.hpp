#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace robustore::trace {

/// Flight-recorder tuning. Defaults are sized for million-access
/// campaigns: one 64-event ring (1 KiB) per in-flight access, the 16
/// slowest accesses of a trial retained for forensics.
struct FlightRecorderConfig {
  /// Ring capacity in events per access. When an access emits more, the
  /// ring keeps the newest `ring_events` (exact stage totals are
  /// maintained outside the ring, so breakdowns never lose time).
  std::uint32_t ring_events = 64;
  /// Retain the slowest-K completed accesses per recorder.
  std::uint32_t keep_slowest = 16;
  /// When > 0, additionally retain every access with latency >= slo.
  double slo = 0.0;
  /// Hard cap on retained records (bounds SLO-mode memory). When full,
  /// a new record replaces the fastest retained one only if strictly
  /// slower — first-seen wins ties, so retention is deterministic.
  std::uint32_t max_retained = 1024;
};

/// One compact event in an access's ring: 16 bytes, plain data. Times
/// are stored relative to the access start as floats — a float holds
/// ~7 significant digits, plenty for intra-access offsets while keeping
/// the record half the size of two doubles.
struct FlightEvent {
  enum Kind : std::uint8_t { kStageSpan = 0, kNamedSpan = 1, kInstant = 2 };

  float rel_end = 0.0f;    // span end (or instant time) - access start
  float duration = 0.0f;   // span length; 0 for instants
  std::uint8_t kind = kStageSpan;
  std::uint8_t stage = kNoStage;  // Stage index for kStageSpan
  std::uint16_t name = 0;         // recorder name-table index (non-stage)
  std::uint32_t disk = kNoDisk;
};
static_assert(sizeof(FlightEvent) == 16, "FlightEvent must stay compact");

/// Everything the recorder knows about one access: the bounded event
/// ring plus exact aggregates maintained outside it (stage totals,
/// reissue/loss counters, per-disk busy time) that survive ring wrap.
struct FlightRecord {
  std::uint64_t stream = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  bool closed = false;
  bool complete = false;

  StageBreakdown stages;
  std::uint32_t reissues = 0;
  std::uint32_t blocks_lost = 0;
  std::uint32_t blocks_corrupt = 0;
  /// Total events offered (>= ring size once wrapped).
  std::uint32_t events_seen = 0;

  /// Disk-stage busy seconds per disk id (bounded; see kMaxDisks).
  /// The argmax is the straggler attribution.
  std::vector<std::pair<std::uint32_t, double>> disk_busy;

  std::vector<FlightEvent> events;  // ring storage, capacity fixed
  std::uint32_t ring_head = 0;      // oldest entry once wrapped

  [[nodiscard]] double latency() const { return end - start; }
  [[nodiscard]] bool wrapped() const {
    return events_seen > events.capacity();
  }
};

/// Always-on per-access flight recorder. Attached as the sink of a
/// (usually disabled) Tracer, it sees every span/instant the existing
/// instrumentation sites emit and keeps a fixed-size ring per in-flight
/// access — no allocation on the steady-state hot path (records and
/// stream slots are pooled and reused), no engine events, no rng, no
/// sim-time perturbation. At trial end the slowest-K accesses survive
/// for retroactive expansion into full Chrome traces (expand()).
///
/// Determinism: retention compares latencies with strict inequality
/// (first-seen wins ties) and absorb() re-offers records in insertion
/// order, so per-trial recorders folded in trial order produce the same
/// retained set at any thread count.
class FlightRecorder {
 public:
  /// Bound on per-record disk_busy entries (an access touches at most
  /// disks_per_access disks; 64 covers every configured workload).
  static constexpr std::size_t kMaxDisks = 64;
  /// Bound on the global fault log.
  static constexpr std::size_t kMaxFaults = 8192;

  explicit FlightRecorder(FlightRecorderConfig config = {});

  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

  /// --- access lifecycle (called by the schemes) -----------------------
  void beginAccess(std::uint64_t stream, SimTime now);
  /// Idempotent: closing an already-closed (or never-begun) stream is a
  /// no-op, so the settle-path fallback can't double-close.
  void endAccess(std::uint64_t stream, SimTime end, bool complete);

  /// --- Tracer sink hooks ----------------------------------------------
  /// Span/instant names must outlive the recorder (string literals or
  /// tracer-interned; both hold in this codebase).
  void onSpan(Stage stage, SimTime begin, SimTime end, std::uint64_t access,
              std::uint32_t disk);
  void onNamedSpan(const char* name, SimTime begin, SimTime end,
                   std::uint64_t access, std::uint32_t disk);
  void onInstant(const char* name, SimTime at, std::uint64_t access,
                 std::uint32_t disk);

  /// --- trial-end forensics --------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<FlightRecord>>& retained()
      const {
    return retained_;
  }

  /// Stage totals of the most recently closed access on `stream`
  /// (nullptr when none). Exactly the sums a tracer's breakdown() would
  /// give for that access — same addSpan calls in the same order,
  /// including spans that settle after the access closed — but O(1) and
  /// per-access-correct when campaigns reuse stream ids. (The retained
  /// FlightRecord's stages stop at close: forensics attribute what made
  /// completion late, not the cancelled tail behind it.)
  [[nodiscard]] const StageBreakdown* lastBreakdown(
      std::uint64_t stream) const;

  /// Number of fault.* instants with a <= t <= b (global, access-blind:
  /// fault injection traces with access id 0).
  [[nodiscard]] std::uint32_t faultsBetween(SimTime a, SimTime b) const;

  /// Straggler attribution: the disk with the most disk-stage busy time
  /// in `rec` (kNoDisk when the access never touched a disk).
  [[nodiscard]] static std::pair<std::uint32_t, double> stragglerDisk(
      const FlightRecord& rec);

  /// Replays `rec`'s ring into `out` (an enabled, sink-less tracer) as
  /// full Records: the access envelope, every retained span/instant, and
  /// the concurrent fault.* instants from the global log. Tracks are
  /// reconstructed from stage + disk id (disk stages -> diskTrack, net
  /// -> kClientLinkTrack, rest -> kClientTrack).
  void expand(const FlightRecord& rec, Tracer& out) const;

  /// Folds `other` into this recorder: fault log appended (time order is
  /// the caller's contract — absorb in trial order), retained records
  /// re-offered through the same retention rule, stats summed. `other`
  /// is drained.
  void absorb(FlightRecorder& other);

  /// --- stats -----------------------------------------------------------
  [[nodiscard]] std::uint64_t accessesBegun() const { return begun_; }
  [[nodiscard]] std::uint64_t accessesClosed() const { return closed_; }
  [[nodiscard]] std::uint64_t eventsSeen() const { return events_seen_; }
  [[nodiscard]] std::uint64_t faultsLogged() const { return faults_.size(); }

 private:
  struct StreamSlot {
    FlightRecord* open = nullptr;  // owned by records_/pool_
    StageBreakdown last;
    bool has_last = false;
  };
  struct FaultEntry {
    SimTime at = 0.0;
    std::uint32_t disk = kNoDisk;
    std::uint16_t name = 0;
  };

  [[nodiscard]] StreamSlot* findSlot(std::uint64_t access);
  [[nodiscard]] FlightRecord* openRecord(std::uint64_t access);
  void push(FlightRecord& rec, const FlightEvent& e);
  [[nodiscard]] std::uint16_t internName(const char* name);
  void offer(std::unique_ptr<FlightRecord> rec);
  void recycle(std::unique_ptr<FlightRecord> rec);
  void closeSlot(StreamSlot& slot, SimTime end, bool complete);

  FlightRecorderConfig config_;
  /// stream -> slot. Entries are never erased (campaigns reuse a bounded
  /// set of stream ids), so steady state does no per-access rehashing.
  std::unordered_map<std::uint64_t, StreamSlot> slots_;
  /// One-entry cache: consecutive events overwhelmingly share a stream.
  std::uint64_t cached_stream_ = 0;
  StreamSlot* cached_slot_ = nullptr;

  std::vector<std::unique_ptr<FlightRecord>> retained_;
  std::vector<std::unique_ptr<FlightRecord>> pool_;
  std::vector<FaultEntry> faults_;
  std::vector<const char*> names_;

  std::uint64_t begun_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t events_seen_ = 0;
};

}  // namespace robustore::trace
