#include "trace/chrome_trace.hpp"

#include <cctype>
#include <cstdio>
#include <vector>

namespace robustore::trace {
namespace {

constexpr double kMicros = 1e6;

void appendMicros(std::string& out, SimTime seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * kMicros);
  out += buf;
}

void appendNumber(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

/// JSON string-body escaping: quotes, backslashes, and control
/// characters. Record names are normally dotted identifiers, but nothing
/// enforces that — the exporter must never emit invalid JSON.
void appendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Category = the component prefix of the record name ("disk.seek" ->
/// "disk"); groups lanes in the Perfetto UI.
std::string_view categoryOf(std::string_view name) {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

std::string trackLabel(std::uint32_t track) {
  if (track == kClientTrack) return "client";
  if (track == kFaultTrack) return "faults";
  if (track == kClientLinkTrack) return "client downlink";
  if (track == kTelemetryTrack) return "telemetry";
  if (track >= serverNicTrack(0)) {
    return "server " + std::to_string(track - serverNicTrack(0)) + " nic";
  }
  return "disk " + std::to_string(track - diskTrack(0));
}

void appendMeta(std::string& out, const char* kind, std::uint64_t pid,
                const std::uint32_t* tid, const std::string& label) {
  out += "{\"name\":\"";
  out += kind;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (tid != nullptr) out += ",\"tid\":" + std::to_string(*tid);
  out += ",\"args\":{\"name\":\"";
  appendEscaped(out, label);
  out += "\"}}";
}

}  // namespace

std::string toChromeTraceJson(const Tracer& tracer, std::uint64_t access) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata first: name each access "process" and track "thread" in
  // first-seen record order (deterministic — no hashing involved).
  std::vector<std::uint64_t> pids;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> tids;
  for (const Record& r : tracer.records()) {
    if (access != 0 && r.access != access) continue;
    bool new_pid = true;
    for (const auto p : pids) new_pid &= p != r.access;
    if (new_pid) {
      pids.push_back(r.access);
      comma();
      appendMeta(out, "process_name", r.access, nullptr,
                 r.access == 0 ? "system" : "access " +
                                                std::to_string(r.access));
    }
    bool new_tid = true;
    for (const auto& [p, t] : tids) new_tid &= p != r.access || t != r.track;
    if (new_tid) {
      tids.emplace_back(r.access, r.track);
      comma();
      appendMeta(out, "thread_name", r.access, &r.track,
                 trackLabel(r.track));
    }
  }

  for (const Record& r : tracer.records()) {
    if (access != 0 && r.access != access) continue;
    comma();
    out += "{\"name\":\"";
    appendEscaped(out, r.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, categoryOf(r.name));
    out += "\",\"ph\":\"";
    out += r.counter ? "C" : (r.instant ? "i" : "X");
    out += "\",\"ts\":";
    appendMicros(out, r.begin);
    if (r.counter) {
      // Counter tracks: Perfetto plots args values keyed by event name.
    } else if (r.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":";
      appendMicros(out, r.end - r.begin);
    }
    out += ",\"pid\":" + std::to_string(r.access);
    out += ",\"tid\":" + std::to_string(r.track);
    out += ",\"args\":{";
    bool first_arg = true;
    if (r.counter) {
      out += "\"value\":";
      appendNumber(out, r.value);
      first_arg = false;
    }
    if (r.disk != kNoDisk) {
      if (!first_arg) out += ",";
      out += "\"disk\":" + std::to_string(r.disk);
      first_arg = false;
    }
    if (r.ref != 0) {
      if (!first_arg) out += ",";
      out += "\"ref\":" + std::to_string(r.ref);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool writeChromeTraceJson(const Tracer& tracer, const std::string& path,
                          std::uint64_t access) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = toChromeTraceJson(tracer, access);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  void skipWs() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
  }
  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
  bool consumeLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool value(int depth);
  bool string();
  bool number();
};

bool JsonCursor::string() {
  if (!consume('"')) return false;
  while (!done()) {
    const char c = text[pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (done()) return false;
      ++pos;  // accept any escape; structural validity is all we check
    }
  }
  return false;
}

bool JsonCursor::number() {
  const std::size_t start = pos;
  if (!done() && peek() == '-') ++pos;
  while (!done() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                     peek() == '.' || peek() == 'e' || peek() == 'E' ||
                     peek() == '+' || peek() == '-')) {
    ++pos;
  }
  return pos > start;
}

bool JsonCursor::value(int depth) {
  if (depth > 64) return false;
  skipWs();
  if (done()) return false;
  const char c = peek();
  if (c == '{') {
    ++pos;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (!consume(':')) return false;
      if (!value(depth + 1)) return false;
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  if (c == '[') {
    ++pos;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  if (c == '"') return string();
  if (c == 't') return consumeLiteral("true");
  if (c == 'f') return consumeLiteral("false");
  if (c == 'n') return consumeLiteral("null");
  return number();
}

}  // namespace

bool validJson(std::string_view text) {
  JsonCursor cur{text};
  if (!cur.value(0)) return false;
  cur.skipWs();
  return cur.done();
}

}  // namespace robustore::trace
