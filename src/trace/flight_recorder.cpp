#include "trace/flight_recorder.hpp"

#include <algorithm>
#include <cstring>

namespace robustore::trace {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.ring_events == 0) config_.ring_events = 1;
  if (config_.max_retained < config_.keep_slowest) {
    config_.max_retained = config_.keep_slowest;
  }
  retained_.reserve(config_.keep_slowest);
}

FlightRecorder::StreamSlot* FlightRecorder::findSlot(std::uint64_t access) {
  if (access == cached_stream_ && cached_slot_ != nullptr) {
    return cached_slot_;
  }
  const auto it = slots_.find(access);
  if (it == slots_.end()) return nullptr;
  cached_stream_ = access;
  cached_slot_ = &it->second;
  return &it->second;
}

FlightRecord* FlightRecorder::openRecord(std::uint64_t access) {
  StreamSlot* slot = findSlot(access);
  return slot != nullptr ? slot->open : nullptr;
}

void FlightRecorder::beginAccess(std::uint64_t stream, SimTime now) {
  StreamSlot& slot = slots_[stream];
  cached_stream_ = stream;
  cached_slot_ = &slot;
  // A reused stream id with a still-open record means the previous
  // access never reached an explicit close; fold it as incomplete.
  if (slot.open != nullptr) closeSlot(slot, now, /*complete=*/false);

  std::unique_ptr<FlightRecord> rec;
  if (!pool_.empty()) {
    rec = std::move(pool_.back());
    pool_.pop_back();
    rec->stages = StageBreakdown{};
    rec->reissues = rec->blocks_lost = rec->blocks_corrupt = 0;
    rec->events_seen = 0;
    rec->disk_busy.clear();
    rec->events.clear();
    rec->ring_head = 0;
  } else {
    rec = std::make_unique<FlightRecord>();
    rec->events.reserve(config_.ring_events);
    rec->disk_busy.reserve(kMaxDisks);
  }
  rec->stream = stream;
  rec->start = now;
  rec->end = now;
  rec->closed = false;
  rec->complete = false;
  slot.open = rec.release();
  ++begun_;
}

void FlightRecorder::closeSlot(StreamSlot& slot, SimTime end, bool complete) {
  FlightRecord* rec = slot.open;
  slot.open = nullptr;
  rec->end = end;
  rec->closed = true;
  rec->complete = complete;
  slot.last = rec->stages;
  slot.has_last = true;
  ++closed_;
  offer(std::unique_ptr<FlightRecord>(rec));
}

void FlightRecorder::endAccess(std::uint64_t stream, SimTime end,
                               bool complete) {
  const auto it = slots_.find(stream);
  if (it == slots_.end() || it->second.open == nullptr) return;
  closeSlot(it->second, end, complete);
}

void FlightRecorder::push(FlightRecord& rec, const FlightEvent& e) {
  ++rec.events_seen;
  ++events_seen_;
  if (rec.events.size() < config_.ring_events) {
    rec.events.push_back(e);
    return;
  }
  rec.events[rec.ring_head] = e;
  rec.ring_head = (rec.ring_head + 1) % config_.ring_events;
}

std::uint16_t FlightRecorder::internName(const char* name) {
  // Names are string literals in practice, so pointer equality hits
  // first; strcmp catches duplicated literals across TUs.
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name || std::strcmp(names_[i], name) == 0) {
      return static_cast<std::uint16_t>(i);
    }
  }
  if (names_.size() >= 0xffff) return 0xffff - 1;  // table full: last slot
  names_.push_back(name);
  return static_cast<std::uint16_t>(names_.size() - 1);
}

void FlightRecorder::onSpan(Stage stage, SimTime begin, SimTime end,
                            std::uint64_t access, std::uint32_t disk) {
  if (access == 0) return;
  StreamSlot* slot = findSlot(access);
  if (slot == nullptr) return;
  FlightRecord* rec = slot->open;
  if (rec == nullptr) {
    // Post-completion tail: cancelled requests and reissue chains settle
    // after the access closed, and a tracer's per-access breakdown()
    // includes those spans. Fold them into the slot's last breakdown so
    // lastBreakdown() stays bitwise equal to the tracer's sums; the
    // offered record keeps its through-completion view for forensics.
    if (slot->has_last) slot->last.addSpan(stage, end - begin);
    return;
  }
  const double duration = end - begin;
  rec->stages.addSpan(stage, duration);
  if (stage == Stage::kClientReissue) ++rec->reissues;
  const bool disk_stage = static_cast<std::uint8_t>(stage) <=
                          static_cast<std::uint8_t>(Stage::kDiskTransfer);
  if (disk_stage && disk != kNoDisk) {
    bool found = false;
    for (auto& [d, busy] : rec->disk_busy) {
      if (d == disk) {
        busy += duration;
        found = true;
        break;
      }
    }
    if (!found && rec->disk_busy.size() < kMaxDisks) {
      rec->disk_busy.emplace_back(disk, duration);
    }
  }
  FlightEvent e;
  e.rel_end = static_cast<float>(end - rec->start);
  e.duration = static_cast<float>(duration);
  e.kind = FlightEvent::kStageSpan;
  e.stage = static_cast<std::uint8_t>(stage);
  e.disk = disk;
  push(*rec, e);
}

void FlightRecorder::onNamedSpan(const char* name, SimTime begin, SimTime end,
                                 std::uint64_t access, std::uint32_t disk) {
  if (access == 0) return;
  FlightRecord* rec = openRecord(access);
  if (rec == nullptr) {
    // The settle-path "client.access" envelope arrives after the record
    // closed — nothing to do. For a still-open record it is the
    // fallback close below.
    return;
  }
  FlightEvent e;
  e.rel_end = static_cast<float>(end - rec->start);
  e.duration = static_cast<float>(end - begin);
  e.kind = FlightEvent::kNamedSpan;
  e.name = internName(name);
  e.disk = disk;
  push(*rec, e);
  if (std::strcmp(name, "client.access") == 0) {
    endAccess(access, end, /*complete=*/false);
  }
}

void FlightRecorder::onInstant(const char* name, SimTime at,
                               std::uint64_t access, std::uint32_t disk) {
  if (access == 0) {
    // System-wide instants: keep the fault log (fault injection traces
    // with access id 0) for concurrent-fault attribution.
    if (std::strncmp(name, "fault.", 6) == 0 &&
        faults_.size() < kMaxFaults) {
      faults_.push_back({at, disk, internName(name)});
    }
    return;
  }
  FlightRecord* rec = openRecord(access);
  if (rec == nullptr) return;
  if (std::strcmp(name, "client.block_lost") == 0) ++rec->blocks_lost;
  if (std::strcmp(name, "client.block_corrupt") == 0) ++rec->blocks_corrupt;
  FlightEvent e;
  e.rel_end = static_cast<float>(at - rec->start);
  e.kind = FlightEvent::kInstant;
  e.name = internName(name);
  e.disk = disk;
  push(*rec, e);
}

const StageBreakdown* FlightRecorder::lastBreakdown(
    std::uint64_t stream) const {
  const auto it = slots_.find(stream);
  if (it == slots_.end() || !it->second.has_last) return nullptr;
  return &it->second.last;
}

std::uint32_t FlightRecorder::faultsBetween(SimTime a, SimTime b) const {
  std::uint32_t n = 0;
  for (const FaultEntry& f : faults_) {
    if (f.at >= a && f.at <= b) ++n;
  }
  return n;
}

std::pair<std::uint32_t, double> FlightRecorder::stragglerDisk(
    const FlightRecord& rec) {
  std::uint32_t disk = kNoDisk;
  double busy = 0.0;
  for (const auto& [d, b] : rec.disk_busy) {
    if (disk == kNoDisk || b > busy) {
      disk = d;
      busy = b;
    }
  }
  return {disk, busy};
}

void FlightRecorder::expand(const FlightRecord& rec, Tracer& out) const {
  out.namedSpan("client.access", rec.start, rec.end, rec.stream,
                kClientTrack);
  const std::size_t n = rec.events.size();
  for (std::size_t i = 0; i < n; ++i) {
    const FlightEvent& e =
        rec.events[(rec.ring_head + i) % n];  // oldest -> newest
    const SimTime end = rec.start + static_cast<double>(e.rel_end);
    const SimTime begin = end - static_cast<double>(e.duration);
    switch (e.kind) {
      case FlightEvent::kStageSpan: {
        const auto stage = static_cast<Stage>(e.stage);
        std::uint32_t track = kClientTrack;
        if (e.stage <= static_cast<std::uint8_t>(Stage::kDiskTransfer) &&
            e.disk != kNoDisk) {
          track = diskTrack(e.disk);
        } else if (stage == Stage::kNetTransfer) {
          track = kClientLinkTrack;
        }
        out.span(stage, begin, end, rec.stream, track, e.disk);
        break;
      }
      case FlightEvent::kNamedSpan:
        out.namedSpan(out.intern(names_[e.name]), begin, end, rec.stream,
                      kClientTrack, e.disk);
        break;
      case FlightEvent::kInstant:
        out.instant(out.intern(names_[e.name]), end, rec.stream,
                    kClientTrack, e.disk);
        break;
    }
  }
  for (const FaultEntry& f : faults_) {
    if (f.at >= rec.start && f.at <= rec.end) {
      out.instant(out.intern(names_[f.name]), f.at, rec.stream, kFaultTrack,
                  f.disk);
    }
  }
}

void FlightRecorder::offer(std::unique_ptr<FlightRecord> rec) {
  const double lat = rec->latency();
  if (retained_.size() < config_.keep_slowest) {
    retained_.push_back(std::move(rec));
    return;
  }
  const bool via_slo = config_.slo > 0.0 && lat >= config_.slo;
  if (via_slo && retained_.size() < config_.max_retained) {
    retained_.push_back(std::move(rec));
    return;
  }
  if (retained_.empty()) {
    recycle(std::move(rec));
    return;
  }
  // Full: replace the fastest retained record only if strictly slower.
  // The <= scan evicts the *latest* of equal-latency records, so the
  // first-seen record wins ties — retention order is deterministic.
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < retained_.size(); ++i) {
    if (retained_[i]->latency() <= retained_[fastest]->latency()) {
      fastest = i;
    }
  }
  if (lat > retained_[fastest]->latency()) {
    recycle(std::move(retained_[fastest]));
    retained_[fastest] = std::move(rec);
  } else {
    recycle(std::move(rec));
  }
}

void FlightRecorder::recycle(std::unique_ptr<FlightRecord> rec) {
  pool_.push_back(std::move(rec));
}

void FlightRecorder::absorb(FlightRecorder& other) {
  for (const FaultEntry& f : other.faults_) {
    if (faults_.size() >= kMaxFaults) break;
    faults_.push_back({f.at, f.disk, internName(other.names_[f.name])});
  }
  for (auto& rec : other.retained_) {
    // Re-intern ring names into this recorder's table.
    for (FlightEvent& e : rec->events) {
      if (e.kind != FlightEvent::kStageSpan) {
        e.name = internName(other.names_[e.name]);
      }
    }
    offer(std::move(rec));
  }
  other.retained_.clear();
  begun_ += other.begun_;
  closed_ += other.closed_;
  events_seen_ += other.events_seen_;
  other.begun_ = other.closed_ = other.events_seen_ = 0;
  other.faults_.clear();
}

}  // namespace robustore::trace
