#include "net/link.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace robustore::net {

Link::Link(sim::Engine& engine, SimTime round_trip, double bandwidth)
    : engine_(&engine), rtt_(round_trip), bandwidth_(bandwidth) {
  ROBUSTORE_EXPECTS(round_trip >= 0, "negative round-trip latency");
  ROBUSTORE_EXPECTS(bandwidth >= 0, "negative bandwidth");
}

SimTime Link::reserveSend(Bytes bytes) {
  return reserveSendFrom(engine_->now(), bytes);
}

SimTime Link::reserveSendFrom(SimTime earliest, Bytes bytes) {
  const SimTime start =
      std::max({engine_->now(), earliest, busy_until_});
  const SimTime xfer =
      bandwidth_ > 0 ? static_cast<double>(bytes) / bandwidth_ : 0.0;
  busy_until_ = start + xfer;
  // Counted here only: the traced overload delegates to this one.
  bytes_sent_ += bytes;
  return busy_until_ + oneWayLatency();
}

SimTime Link::reserveSend(Bytes bytes, std::uint64_t stream) {
  return reserveSendFrom(engine_->now(), bytes, stream);
}

SimTime Link::reserveSendFrom(SimTime earliest, Bytes bytes,
                              std::uint64_t stream) {
  const SimTime start =
      std::max({engine_->now(), earliest, busy_until_});
  const SimTime arrival = reserveSendFrom(earliest, bytes);
  if (tracer_ != nullptr) {
    tracer_->span(trace::Stage::kNetTransfer, start, arrival, stream, track_);
  }
  return arrival;
}

SimTime Link::controlArrival() const { return engine_->now() + oneWayLatency(); }

Bytes Link::inFlightBytes() const {
  if (bandwidth_ <= 0.0 || busy_until_ <= engine_->now()) return 0;
  return static_cast<Bytes>((busy_until_ - engine_->now()) * bandwidth_);
}

}  // namespace robustore::net
