#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace robustore::net {

/// Network path between a client and a storage server.
///
/// The paper's model (§6.2.2): bandwidth is presumed plentiful, so the
/// network contributes a fixed round-trip latency per *request*; responses
/// serialise through the server NIC at a finite rate (cache hits are
/// "sent at the maximum network speed"). We model exactly that: a constant
/// one-way latency plus a busy-until serialisation point.
class Link {
 public:
  /// `bandwidth` in bytes/second; 0 means unlimited (pure latency).
  Link(sim::Engine& engine, SimTime round_trip, double bandwidth = 0.0);

  [[nodiscard]] SimTime oneWayLatency() const { return rtt_ / 2; }
  [[nodiscard]] SimTime roundTrip() const { return rtt_; }

  /// Reserves the serialisation point for `bytes` starting no earlier than
  /// now, and returns the absolute time the payload fully arrives at the
  /// other end (serialisation + one-way latency). Does not schedule
  /// anything; the caller owns the delivery event.
  [[nodiscard]] SimTime reserveSend(Bytes bytes);

  /// Like reserveSend, but the payload only becomes available at
  /// `earliest` (it is still arriving from an upstream hop). Used to
  /// chain links: server NIC then the shared client downlink.
  [[nodiscard]] SimTime reserveSendFrom(SimTime earliest, Bytes bytes);

  /// Stream-attributed variants: identical arithmetic, but when a tracer
  /// is attached the reservation emits a net.transfer span for `stream`
  /// covering serialisation start through arrival.
  [[nodiscard]] SimTime reserveSend(Bytes bytes, std::uint64_t stream);
  [[nodiscard]] SimTime reserveSendFrom(SimTime earliest, Bytes bytes,
                                        std::uint64_t stream);

  /// Arrival time of a zero-payload control message sent now.
  [[nodiscard]] SimTime controlArrival() const;

  /// Bytes still serialising through this link right now (reserved work
  /// beyond the current clock, at the link rate). Unlimited links always
  /// report 0 — nothing ever waits on them. Telemetry probe.
  [[nodiscard]] Bytes inFlightBytes() const;

  /// Cumulative payload bytes ever reserved through this link.
  [[nodiscard]] Bytes bytesSent() const { return bytes_sent_; }

  /// Attaches a tracer and the display track this link's transfers render
  /// on (null tracer = tracing off, the default).
  void setTrace(trace::Tracer* tracer, std::uint32_t track) {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  sim::Engine* engine_;
  SimTime rtt_;
  double bandwidth_;
  SimTime busy_until_ = 0.0;
  Bytes bytes_sent_ = 0;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
};

}  // namespace robustore::net
