#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "disk/disk.hpp"
#include "sim/engine.hpp"

namespace robustore::workload {

/// Competitive background workload on one disk (§6.2.4/§6.2.5): a stream
/// of mid-size (~50-sector) requests with random inter-arrival times whose
/// mean sets the degree of disk sharing. Interval 6 ms keeps the disk ~93%
/// busy; 200 ms barely touches it (Figure 6-5).
struct BackgroundConfig {
  /// Mean inter-arrival time; <= 0 disables the generator.
  SimTime mean_interval = 0.0;
  /// Mean request size in sectors (exponential, at least one sector).
  double mean_sectors = 50.0;

  [[nodiscard]] bool enabled() const { return mean_interval > 0; }
};

/// Generates background requests against a single disk while started.
/// Requests are submitted at background priority with locality-friendly
/// positioning (no full-stroke seek), which calibrates a 50-sector request
/// to ~5.5 ms of disk time as the paper's utilisation curve requires.
class BackgroundGenerator {
 public:
  BackgroundGenerator(sim::Engine& engine, disk::Disk& target,
                      const BackgroundConfig& config, Rng rng);

  BackgroundGenerator(const BackgroundGenerator&) = delete;
  BackgroundGenerator& operator=(const BackgroundGenerator&) = delete;

  /// Starts emitting requests (idempotent).
  void start();
  /// Batched variant of start() for whole-cluster waves: draws the first
  /// inter-arrival time and appends the arrival event to `out` instead of
  /// scheduling it. The caller submits the wave with Engine::scheduleBatch
  /// and hands the resulting handle back via adoptPending() so stop() can
  /// still cancel it. Returns false (and appends nothing) when already
  /// active or disabled. Equivalent to start() event for event.
  bool prepareStart(sim::Engine::BatchEvent& out);
  /// Completes prepareStart(): records the scheduled first-arrival id.
  void adoptPending(sim::EventId id) { pending_ = id; }
  /// Stops emitting; requests already queued at the disk still complete.
  void stop();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const BackgroundConfig& config() const { return config_; }
  void setConfig(const BackgroundConfig& config) { config_ = config; }

  /// Stream id used for this generator's requests.
  [[nodiscard]] disk::StreamId stream() const;

  [[nodiscard]] std::uint64_t requestsIssued() const { return issued_; }

 private:
  void scheduleNext();
  void emit();

  sim::Engine* engine_;
  disk::Disk* target_;
  BackgroundConfig config_;
  Rng rng_;
  bool active_ = false;
  sim::EventId pending_{};
  std::uint64_t issued_ = 0;
};

}  // namespace robustore::workload
