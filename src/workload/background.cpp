#include "workload/background.hpp"

#include <algorithm>

namespace robustore::workload {

BackgroundGenerator::BackgroundGenerator(sim::Engine& engine,
                                         disk::Disk& target,
                                         const BackgroundConfig& config,
                                         Rng rng)
    : engine_(&engine), target_(&target), config_(config), rng_(rng) {}

disk::StreamId BackgroundGenerator::stream() const {
  // High bit marks background streams; disambiguated per disk.
  return (disk::StreamId{1} << 63) | target_->id();
}

void BackgroundGenerator::start() {
  if (active_ || !config_.enabled()) return;
  active_ = true;
  scheduleNext();
}

bool BackgroundGenerator::prepareStart(sim::Engine::BatchEvent& out) {
  if (active_ || !config_.enabled()) return false;
  active_ = true;
  out.delay = rng_.exponential(config_.mean_interval);
  out.fn = [this] { emit(); };
  return true;
}

void BackgroundGenerator::stop() {
  active_ = false;
  if (pending_.valid()) {
    engine_->cancel(pending_);
    pending_ = {};
  }
}

void BackgroundGenerator::scheduleNext() {
  pending_ = engine_->schedule(rng_.exponential(config_.mean_interval),
                               [this] { emit(); });
}

void BackgroundGenerator::emit() {
  pending_ = {};
  if (!active_) return;
  const auto sectors = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(rng_.exponential(config_.mean_sectors)));

  disk::DiskRequestSpec spec;
  spec.stream = stream();
  spec.priority = disk::Priority::kBackground;
  spec.extents = {disk::Extent{sectors * kSectorBytes, false}};
  spec.media_rate = target_->mediaRate(rng_.uniform());
  spec.seek_scale = 0.0;  // locality-friendly: rotation + command only
  target_->submit(std::move(spec), nullptr);
  ++issued_;
  scheduleNext();
}

}  // namespace robustore::workload
