#pragma once

/// Umbrella header: the full RobuSTore public API.
///
/// Layering (bottom to top):
///   common/    deterministic RNG, running statistics, units
///   sim/       discrete-event engine
///   coding/    erasure codes: GF(256)+Reed-Solomon, LT (robust soliton,
///              peeling decoder, update planner), Raptor, Tornado,
///              replication; XOR kernels
///   analysis/  closed-form replication-vs-coding reassembly math
///   disk/      block-level drive model with in-disk layout synthesis
///   net/       latency + serialisation links
///   server/    filer cache, admission control, storage server
///   meta/      metadata service (registry, namespace, locks, selection)
///   security/  credential-chain capability validation
///   workload/  competitive background load generators
///   client/    the four storage schemes over a simulated cluster
///   metrics/   per-access and aggregate figures of merit
///   core/      single- and multi-client experiment runners

#include "analysis/reassembly.hpp"
#include "client/cluster.hpp"
#include "client/filesystem.hpp"
#include "client/raid0.hpp"
#include "client/robustore_scheme.hpp"
#include "client/rraid.hpp"
#include "client/scheme.hpp"
#include "client/stored_file.hpp"
#include "coding/gf256.hpp"
#include "coding/lt_codec.hpp"
#include "coding/lt_graph.hpp"
#include "coding/matrix.hpp"
#include "coding/raptor.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/replication.hpp"
#include "coding/soliton.hpp"
#include "coding/tornado.hpp"
#include "coding/update.hpp"
#include "coding/xor_kernel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/experiment.hpp"
#include "core/multi_client.hpp"
#include "disk/disk.hpp"
#include "disk/layout.hpp"
#include "disk/params.hpp"
#include "meta/metadata_server.hpp"
#include "meta/qos_planner.hpp"
#include "metrics/metrics.hpp"
#include "net/link.hpp"
#include "security/credentials.hpp"
#include "server/admission.hpp"
#include "server/filer_cache.hpp"
#include "server/storage_server.hpp"
#include "sim/engine.hpp"
#include "workload/background.hpp"
