#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "disk/disk.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace robustore::fault {

/// The failure modes of the robustness story (§1.1, §5.3.1): single-site
/// fail-stop, nodes that fail *and recover* over time (Luby's
/// availability model), transient service pauses, and persistently slow
/// disks — the performance-variation end of the same spectrum.
enum class FaultKind : std::uint8_t {
  kFailStop,        // dead at `at`, forever
  kCrashRecover,    // dead during [at, at + duration)
  kTransientStall,  // service pauses during [at, at + duration); no loss
  kSlowDisk,        // service times x `service_multiplier` from `at` on
};

[[nodiscard]] const char* faultKindName(FaultKind kind);

/// One scripted fault against one disk.
struct FaultSpec {
  /// Target disk. Interpreted by the scheduling caller: the experiment
  /// runner indexes the trial's *selected access disks* (so "disk 0" is
  /// the first disk of the access, whichever global disk that is);
  /// FaultInjector::schedule resolves it through its own resolver.
  std::uint32_t disk = 0;
  FaultKind kind = FaultKind::kFailStop;
  /// Injection time, relative to when the injector is armed.
  SimTime at = 0.0;
  /// Outage / stall length (crash-recover and transient-stall only).
  SimTime duration = 0.0;
  /// Service-time factor (slow-disk only); > 1 = degraded.
  double service_multiplier = 1.0;
};

/// Seeded-stochastic fault schedule: each disk independently draws at
/// most one fault, with kind probabilities evaluated in the order below
/// (a disk that fail-stops draws nothing else). All draws come from one
/// caller-provided Rng, so a (seed, trial) pair always produces the same
/// schedule — the parallel trial pool stays bit-identical.
struct FaultModel {
  /// Probability a disk fail-stops, at a uniform time in [0, horizon).
  double fail_stop_prob = 0.0;
  /// Probability of a crash-recover outage starting uniformly in
  /// [0, horizon), lasting Exp(mean_outage).
  double crash_prob = 0.0;
  SimTime mean_outage = 1.0;
  /// Probability of a transient stall starting uniformly in [0, horizon),
  /// lasting Exp(mean_stall).
  double stall_prob = 0.0;
  SimTime mean_stall = 0.1;
  /// Probability a disk is a straggler from t=0, with its service-time
  /// multiplier uniform in [straggler_min, straggler_max).
  double straggler_prob = 0.0;
  double straggler_min = 2.0;
  double straggler_max = 4.0;
  /// Injection-time window for the draws above.
  SimTime horizon = 1.0;

  [[nodiscard]] bool enabled() const {
    return fail_stop_prob > 0.0 || crash_prob > 0.0 || stall_prob > 0.0 ||
           straggler_prob > 0.0;
  }
};

/// Renewal-process churn (the long-horizon durability model): each disk
/// independently alternates Exp(1/failure_rate) lifetimes with a fixed
/// provisioning delay. A churn failure is *permanent data loss* for that
/// disk slot — unlike kCrashRecover, the replacement arrives empty, so
/// whatever lived there must be regenerated (repair::RepairService) or it
/// is gone. Horizons are meant to be ≫ one access: many failures per disk
/// per run.
struct ChurnModel {
  /// Permanent-failure rate λ per disk, failures per simulated second.
  double failure_rate = 0.0;
  /// Provisioning delay: how long a slot stays empty before the
  /// replacement disk comes up (its lifetime clock restarts then).
  SimTime replacement_delay = 60.0;
  /// Draw failure/replacement events in [0, horizon).
  SimTime horizon = 0.0;

  [[nodiscard]] bool enabled() const {
    return failure_rate > 0.0 && horizon > 0.0;
  }
};

enum class ChurnEventKind : std::uint8_t {
  kPermanentFailure,  // disk slot dies; its contents are lost for good
  kReplacement,       // empty replacement disk comes up in the same slot
};

struct ChurnEvent {
  std::uint32_t disk = 0;  // resolved like FaultSpec::disk
  ChurnEventKind kind = ChurnEventKind::kPermanentFailure;
  /// Event time, relative to when the injector is armed.
  SimTime at = 0.0;
};

/// Silent block corruption: the stored block at index `block` on `disk`
/// (both interpreted by the caller's applier — the injector itself has no
/// notion of files) is damaged in place at time `at`. The disk keeps
/// serving it; the *reader* detects the damage via its checksum and
/// treats the delivery as a loss. The scheduling seam lives here so
/// corruption composes with the rest of the fault vocabulary (tracing,
/// injection ledger, batch arming) even though its effect is applied at
/// the file layer.
struct CorruptionSpec {
  std::uint32_t disk = 0;  // resolved by the applier, like FaultSpec::disk
  /// Which stored block on that disk (applier-defined indexing; chaos
  /// campaigns take it modulo the placement's stored count).
  std::uint32_t block = 0;
  /// Injection time, relative to when the injector is armed.
  SimTime at = 0.0;
};

/// A full failure scenario: an explicit script, a stochastic model, a
/// churn process, or any mix. Part of ExperimentConfig, applied
/// identically to every trial (the stochastic draws differ per trial,
/// deterministically).
struct FaultPlan {
  std::vector<FaultSpec> scripted;
  FaultModel model;
  ChurnModel churn;

  [[nodiscard]] bool enabled() const {
    return !scripted.empty() || model.enabled() || churn.enabled();
  }
};

/// Drives faults into disks through the sim engine. Decoupled from any
/// cluster type via the resolver: callers hand in "disk index -> Disk&"
/// for whatever roster the schedule's indices refer to.
///
/// Overlapping faults on one disk obey an explicit precedence, tracked
/// per disk inside the injector (the disk itself only knows failed/not):
///
///   1. kFailStop is permanent: no pending crash-recover outage may
///      resurrect the disk afterwards. Only a churn kReplacement (fresh
///      hardware in the slot) clears the permanent state.
///   2. Overlapping kCrashRecover outages merge: the disk stays down
///      until the *latest* outage end. The failure listener fires once
///      (Disk::failStop is idempotent) and recovery happens once.
///   3. A kTransientStall landing while the disk is down is subsumed —
///      a dead disk has nothing to pause. Stalls on a live disk extend
///      each other as before (Disk::stall already merges windows).
///
/// Before this was pinned down, an outage's unconditional recover()
/// could revive a disk inside a later overlapping outage — or one that
/// had permanently fail-stopped in between.
class FaultInjector {
 public:
  using DiskResolver = std::function<disk::Disk&(std::uint32_t)>;
  /// Observer of churn events, fired after the disk verb was applied —
  /// the repair service's detection hook (metadata availability updates,
  /// lost-block enumeration).
  using ChurnListener = std::function<void(const ChurnEvent&)>;

  FaultInjector(sim::Engine& engine, DiskResolver resolve)
      : engine_(&engine), resolve_(std::move(resolve)) {}

  /// Schedules one fault (times relative to now). Injection happens via
  /// engine events, so arming before engine.run() is safe.
  void schedule(const FaultSpec& spec);

  /// Schedules a whole fault schedule in one engine batch (same event
  /// order as calling schedule() per spec).
  void scheduleAll(const std::vector<FaultSpec>& specs);

  /// Schedules a churn event stream (times relative to now) in one engine
  /// batch. Failures mark the disk permanently down; replacements clear
  /// all fault state for the slot and bring the disk back empty.
  void scheduleChurn(const std::vector<ChurnEvent>& events);

  void setChurnListener(ChurnListener listener) {
    churn_listener_ = std::move(listener);
  }

  /// Applies a corruption to whatever data model the caller runs (mark
  /// the block in a StoredFile, notify the repair service, ...). Must be
  /// set before any scheduled corruption fires.
  using CorruptionApplier = std::function<void(const CorruptionSpec&)>;
  void setCorruptionApplier(CorruptionApplier applier) {
    corruption_applier_ = std::move(applier);
  }

  /// Schedules block corruptions (times relative to now) in one engine
  /// batch. Each firing counts in corruptionsInjected() and traces a
  /// "fault.inject.corrupt_block" instant before the applier runs.
  void scheduleCorruption(const std::vector<CorruptionSpec>& specs);

  /// Draws the stochastic schedule for `num_disks` disks from `rng`.
  /// Pure: consumes a fixed number of draws per disk regardless of
  /// outcome, so schedules for different disks never shift each other.
  [[nodiscard]] static std::vector<FaultSpec> drawSchedule(
      const FaultModel& model, std::uint32_t num_disks, Rng& rng);

  /// Draws the renewal-process churn schedule for `num_disks` disks.
  /// Each disk gets its own forked child stream (one parent draw per
  /// disk), so a disk's failure count never shifts another disk's
  /// timeline and a shorter roster draws a prefix of a longer one's.
  /// Events are emitted per disk in time order.
  [[nodiscard]] static std::vector<ChurnEvent> drawChurn(
      const ChurnModel& model, std::uint32_t num_disks, Rng& rng);

  /// Records a "fault.inject" instant per applied fault. Null = off.
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Faults whose injection time arrived (per kind, cumulative).
  [[nodiscard]] std::uint32_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint32_t injectedTotal() const;

  /// Scheduled faults whose injection time has not arrived yet
  /// (telemetry probe: the countdown the timeline plots).
  [[nodiscard]] std::uint32_t pendingFaults() const {
    return scheduled_ - injectedTotal();
  }

  /// Churn events whose time arrived (cumulative).
  [[nodiscard]] std::uint32_t churnFailures() const { return churn_failures_; }
  [[nodiscard]] std::uint32_t churnReplacements() const {
    return churn_replacements_;
  }

  /// Corruptions whose injection time arrived (cumulative; counted even
  /// when the applier decides the target block no longer exists).
  [[nodiscard]] std::uint32_t corruptionsInjected() const {
    return corruptions_injected_;
  }

 private:
  /// Per-disk overlap bookkeeping for the precedence rules above.
  struct DiskFaultState {
    bool permanent = false;   // kFailStop or churn failure landed
    SimTime down_until = 0.0; // latest crash-recover outage end
  };

  void apply(const FaultSpec& spec);
  void applyChurn(const ChurnEvent& event);
  void applyCorruption(const CorruptionSpec& spec);
  void maybeRecover(std::uint32_t disk);

  sim::Engine* engine_;
  DiskResolver resolve_;
  trace::Tracer* tracer_ = nullptr;
  ChurnListener churn_listener_;
  CorruptionApplier corruption_applier_;
  std::unordered_map<std::uint32_t, DiskFaultState> state_;
  std::uint32_t scheduled_ = 0;
  std::uint32_t injected_[4] = {0, 0, 0, 0};
  std::uint32_t churn_failures_ = 0;
  std::uint32_t churn_replacements_ = 0;
  std::uint32_t corruptions_injected_ = 0;
};

}  // namespace robustore::fault
