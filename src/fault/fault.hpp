#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "disk/disk.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace robustore::fault {

/// The failure modes of the robustness story (§1.1, §5.3.1): single-site
/// fail-stop, nodes that fail *and recover* over time (Luby's
/// availability model), transient service pauses, and persistently slow
/// disks — the performance-variation end of the same spectrum.
enum class FaultKind : std::uint8_t {
  kFailStop,        // dead at `at`, forever
  kCrashRecover,    // dead during [at, at + duration)
  kTransientStall,  // service pauses during [at, at + duration); no loss
  kSlowDisk,        // service times x `service_multiplier` from `at` on
};

[[nodiscard]] const char* faultKindName(FaultKind kind);

/// One scripted fault against one disk.
struct FaultSpec {
  /// Target disk. Interpreted by the scheduling caller: the experiment
  /// runner indexes the trial's *selected access disks* (so "disk 0" is
  /// the first disk of the access, whichever global disk that is);
  /// FaultInjector::schedule resolves it through its own resolver.
  std::uint32_t disk = 0;
  FaultKind kind = FaultKind::kFailStop;
  /// Injection time, relative to when the injector is armed.
  SimTime at = 0.0;
  /// Outage / stall length (crash-recover and transient-stall only).
  SimTime duration = 0.0;
  /// Service-time factor (slow-disk only); > 1 = degraded.
  double service_multiplier = 1.0;
};

/// Seeded-stochastic fault schedule: each disk independently draws at
/// most one fault, with kind probabilities evaluated in the order below
/// (a disk that fail-stops draws nothing else). All draws come from one
/// caller-provided Rng, so a (seed, trial) pair always produces the same
/// schedule — the parallel trial pool stays bit-identical.
struct FaultModel {
  /// Probability a disk fail-stops, at a uniform time in [0, horizon).
  double fail_stop_prob = 0.0;
  /// Probability of a crash-recover outage starting uniformly in
  /// [0, horizon), lasting Exp(mean_outage).
  double crash_prob = 0.0;
  SimTime mean_outage = 1.0;
  /// Probability of a transient stall starting uniformly in [0, horizon),
  /// lasting Exp(mean_stall).
  double stall_prob = 0.0;
  SimTime mean_stall = 0.1;
  /// Probability a disk is a straggler from t=0, with its service-time
  /// multiplier uniform in [straggler_min, straggler_max).
  double straggler_prob = 0.0;
  double straggler_min = 2.0;
  double straggler_max = 4.0;
  /// Injection-time window for the draws above.
  SimTime horizon = 1.0;

  [[nodiscard]] bool enabled() const {
    return fail_stop_prob > 0.0 || crash_prob > 0.0 || stall_prob > 0.0 ||
           straggler_prob > 0.0;
  }
};

/// A full failure scenario: an explicit script, a stochastic model, or
/// both. Part of ExperimentConfig, applied identically to every trial
/// (the stochastic draws differ per trial, deterministically).
struct FaultPlan {
  std::vector<FaultSpec> scripted;
  FaultModel model;

  [[nodiscard]] bool enabled() const {
    return !scripted.empty() || model.enabled();
  }
};

/// Drives faults into disks through the sim engine. Decoupled from any
/// cluster type via the resolver: callers hand in "disk index -> Disk&"
/// for whatever roster the schedule's indices refer to.
class FaultInjector {
 public:
  using DiskResolver = std::function<disk::Disk&(std::uint32_t)>;

  FaultInjector(sim::Engine& engine, DiskResolver resolve)
      : engine_(&engine), resolve_(std::move(resolve)) {}

  /// Schedules one fault (times relative to now). Injection happens via
  /// engine events, so arming before engine.run() is safe.
  void schedule(const FaultSpec& spec);

  /// Schedules a whole fault schedule in one engine batch (same event
  /// order as calling schedule() per spec).
  void scheduleAll(const std::vector<FaultSpec>& specs);

  /// Draws the stochastic schedule for `num_disks` disks from `rng`.
  /// Pure: consumes a fixed number of draws per disk regardless of
  /// outcome, so schedules for different disks never shift each other.
  [[nodiscard]] static std::vector<FaultSpec> drawSchedule(
      const FaultModel& model, std::uint32_t num_disks, Rng& rng);

  /// Records a "fault.inject" instant per applied fault. Null = off.
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Faults whose injection time arrived (per kind, cumulative).
  [[nodiscard]] std::uint32_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint32_t injectedTotal() const;

  /// Scheduled faults whose injection time has not arrived yet
  /// (telemetry probe: the countdown the timeline plots).
  [[nodiscard]] std::uint32_t pendingFaults() const {
    return scheduled_ - injectedTotal();
  }

 private:
  void apply(const FaultSpec& spec);

  sim::Engine* engine_;
  DiskResolver resolve_;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t scheduled_ = 0;
  std::uint32_t injected_[4] = {0, 0, 0, 0};
};

}  // namespace robustore::fault
