#include "fault/fault.hpp"

#include "common/expects.hpp"

namespace robustore::fault {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail-stop";
    case FaultKind::kCrashRecover:
      return "crash-recover";
    case FaultKind::kTransientStall:
      return "transient-stall";
    case FaultKind::kSlowDisk:
      return "slow-disk";
  }
  return "?";
}

void FaultInjector::schedule(const FaultSpec& spec) {
  ROBUSTORE_EXPECTS(spec.at >= 0.0, "fault scheduled in the past");
  ++scheduled_;
  engine_->schedule(spec.at, [this, spec] { apply(spec); });
}

void FaultInjector::scheduleAll(const std::vector<FaultSpec>& specs) {
  std::vector<sim::Engine::BatchEvent> batch;
  batch.reserve(specs.size());
  for (const FaultSpec& spec : specs) {
    ROBUSTORE_EXPECTS(spec.at >= 0.0, "fault scheduled in the past");
    ++scheduled_;
    batch.push_back({spec.at, [this, spec] { apply(spec); }});
  }
  engine_->scheduleBatch(batch);
}

void FaultInjector::apply(const FaultSpec& spec) {
  disk::Disk& d = resolve_(spec.disk);
  ++injected_[static_cast<std::size_t>(spec.kind)];
  if (tracer_ != nullptr) {
    static const char* const kInjectNames[] = {
        "fault.inject.fail_stop", "fault.inject.crash_recover",
        "fault.inject.transient_stall", "fault.inject.slow_disk"};
    tracer_->instant(kInjectNames[static_cast<std::size_t>(spec.kind)],
                     engine_->now(), /*access=*/0, trace::kFaultTrack,
                     d.id());
  }
  switch (spec.kind) {
    case FaultKind::kFailStop:
      d.failStop();
      break;
    case FaultKind::kCrashRecover:
      d.failStop();
      engine_->schedule(spec.duration, [this, disk = spec.disk] {
        resolve_(disk).recover();
      });
      break;
    case FaultKind::kTransientStall:
      d.stall(spec.duration);
      break;
    case FaultKind::kSlowDisk:
      d.setServiceMultiplier(spec.service_multiplier);
      break;
  }
}

std::uint32_t FaultInjector::injectedTotal() const {
  return injected_[0] + injected_[1] + injected_[2] + injected_[3];
}

std::vector<FaultSpec> FaultInjector::drawSchedule(const FaultModel& model,
                                                   std::uint32_t num_disks,
                                                   Rng& rng) {
  std::vector<FaultSpec> out;
  for (std::uint32_t d = 0; d < num_disks; ++d) {
    // Fixed draw count per disk: every branch consumes the same stream
    // positions, so one disk's outcome never shifts another's schedule.
    const double u_fail = rng.uniform();
    const double u_crash = rng.uniform();
    const double u_stall = rng.uniform();
    const double u_straggle = rng.uniform();
    const double at = rng.uniform() * model.horizon;
    const double outage = rng.exponential(model.mean_outage);
    const double stall = rng.exponential(model.mean_stall);
    const double mult =
        rng.uniform(model.straggler_min, model.straggler_max);

    FaultSpec spec;
    spec.disk = d;
    if (u_fail < model.fail_stop_prob) {
      spec.kind = FaultKind::kFailStop;
      spec.at = at;
    } else if (u_crash < model.crash_prob) {
      spec.kind = FaultKind::kCrashRecover;
      spec.at = at;
      spec.duration = outage;
    } else if (u_stall < model.stall_prob) {
      spec.kind = FaultKind::kTransientStall;
      spec.at = at;
      spec.duration = stall;
    } else if (u_straggle < model.straggler_prob) {
      spec.kind = FaultKind::kSlowDisk;
      spec.at = 0.0;  // stragglers are slow from the start
      spec.service_multiplier = mult;
    } else {
      continue;  // this disk stays healthy
    }
    out.push_back(spec);
  }
  return out;
}

}  // namespace robustore::fault
