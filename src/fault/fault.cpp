#include "fault/fault.hpp"

#include "common/expects.hpp"

namespace robustore::fault {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail-stop";
    case FaultKind::kCrashRecover:
      return "crash-recover";
    case FaultKind::kTransientStall:
      return "transient-stall";
    case FaultKind::kSlowDisk:
      return "slow-disk";
  }
  return "?";
}

void FaultInjector::schedule(const FaultSpec& spec) {
  ROBUSTORE_EXPECTS(spec.at >= 0.0, "fault scheduled in the past");
  ++scheduled_;
  engine_->schedule(spec.at, [this, spec] { apply(spec); });
}

void FaultInjector::scheduleAll(const std::vector<FaultSpec>& specs) {
  std::vector<sim::Engine::BatchEvent> batch;
  batch.reserve(specs.size());
  for (const FaultSpec& spec : specs) {
    ROBUSTORE_EXPECTS(spec.at >= 0.0, "fault scheduled in the past");
    ++scheduled_;
    batch.push_back({spec.at, [this, spec] { apply(spec); }});
  }
  engine_->scheduleBatch(batch);
}

void FaultInjector::apply(const FaultSpec& spec) {
  disk::Disk& d = resolve_(spec.disk);
  ++injected_[static_cast<std::size_t>(spec.kind)];
  if (tracer_ != nullptr) {
    static const char* const kInjectNames[] = {
        "fault.inject.fail_stop", "fault.inject.crash_recover",
        "fault.inject.transient_stall", "fault.inject.slow_disk"};
    tracer_->instant(kInjectNames[static_cast<std::size_t>(spec.kind)],
                     engine_->now(), /*access=*/0, trace::kFaultTrack,
                     d.id());
  }
  DiskFaultState& st = state_[spec.disk];
  switch (spec.kind) {
    case FaultKind::kFailStop:
      st.permanent = true;
      d.failStop();
      break;
    case FaultKind::kCrashRecover: {
      // Overlapping outages merge: keep the latest end, recover once.
      const SimTime until = engine_->now() + spec.duration;
      if (until > st.down_until) st.down_until = until;
      d.failStop();
      engine_->schedule(spec.duration,
                        [this, disk = spec.disk] { maybeRecover(disk); });
      break;
    }
    case FaultKind::kTransientStall:
      // A stall on a dead disk is subsumed by the outage.
      if (!d.failed()) d.stall(spec.duration);
      break;
    case FaultKind::kSlowDisk:
      d.setServiceMultiplier(spec.service_multiplier);
      break;
  }
}

void FaultInjector::maybeRecover(std::uint32_t disk) {
  auto it = state_.find(disk);
  if (it != state_.end()) {
    if (it->second.permanent) return;            // fail-stop wins
    if (engine_->now() < it->second.down_until)  // a later outage extends
      return;
  }
  resolve_(disk).recover();
}

void FaultInjector::scheduleChurn(const std::vector<ChurnEvent>& events) {
  std::vector<sim::Engine::BatchEvent> batch;
  batch.reserve(events.size());
  for (const ChurnEvent& event : events) {
    ROBUSTORE_EXPECTS(event.at >= 0.0, "churn event scheduled in the past");
    batch.push_back({event.at, [this, event] { applyChurn(event); }});
  }
  engine_->scheduleBatch(batch);
}

void FaultInjector::applyChurn(const ChurnEvent& event) {
  disk::Disk& d = resolve_(event.disk);
  if (tracer_ != nullptr) {
    tracer_->instant(event.kind == ChurnEventKind::kPermanentFailure
                         ? "fault.inject.churn_failure"
                         : "fault.inject.churn_replacement",
                     engine_->now(), /*access=*/0, trace::kFaultTrack,
                     d.id());
  }
  switch (event.kind) {
    case ChurnEventKind::kPermanentFailure:
      ++churn_failures_;
      state_[event.disk].permanent = true;
      d.failStop();
      break;
    case ChurnEventKind::kReplacement:
      // Fresh hardware in the slot: supersedes every prior fault on it,
      // including a scripted kFailStop (the dead unit was carted away).
      ++churn_replacements_;
      state_[event.disk] = DiskFaultState{};
      d.recover();
      break;
  }
  if (churn_listener_) churn_listener_(event);
}

void FaultInjector::scheduleCorruption(const std::vector<CorruptionSpec>& specs) {
  std::vector<sim::Engine::BatchEvent> batch;
  batch.reserve(specs.size());
  for (const CorruptionSpec& spec : specs) {
    ROBUSTORE_EXPECTS(spec.at >= 0.0, "corruption scheduled in the past");
    batch.push_back({spec.at, [this, spec] { applyCorruption(spec); }});
  }
  engine_->scheduleBatch(batch);
}

void FaultInjector::applyCorruption(const CorruptionSpec& spec) {
  ++corruptions_injected_;
  if (tracer_ != nullptr) {
    tracer_->instant("fault.inject.corrupt_block", engine_->now(),
                     /*access=*/0, trace::kFaultTrack,
                     resolve_(spec.disk).id(), spec.block);
  }
  ROBUSTORE_EXPECTS(corruption_applier_ != nullptr,
                    "corruption fired without an applier");
  corruption_applier_(spec);
}

std::vector<ChurnEvent> FaultInjector::drawChurn(const ChurnModel& model,
                                                 std::uint32_t num_disks,
                                                 Rng& rng) {
  std::vector<ChurnEvent> out;
  if (!model.enabled()) return out;
  const double mean_life = 1.0 / model.failure_rate;
  for (std::uint32_t d = 0; d < num_disks; ++d) {
    Rng stream = rng.fork(d);  // one parent draw per disk, like fork()
    SimTime t = 0.0;
    for (;;) {
      t += stream.exponential(mean_life);
      if (t >= model.horizon) break;
      out.push_back({d, ChurnEventKind::kPermanentFailure, t});
      t += model.replacement_delay;
      out.push_back({d, ChurnEventKind::kReplacement, t});
    }
  }
  return out;
}

std::uint32_t FaultInjector::injectedTotal() const {
  return injected_[0] + injected_[1] + injected_[2] + injected_[3];
}

std::vector<FaultSpec> FaultInjector::drawSchedule(const FaultModel& model,
                                                   std::uint32_t num_disks,
                                                   Rng& rng) {
  std::vector<FaultSpec> out;
  for (std::uint32_t d = 0; d < num_disks; ++d) {
    // Fixed draw count per disk: every branch consumes the same stream
    // positions, so one disk's outcome never shifts another's schedule.
    const double u_fail = rng.uniform();
    const double u_crash = rng.uniform();
    const double u_stall = rng.uniform();
    const double u_straggle = rng.uniform();
    const double at = rng.uniform() * model.horizon;
    const double outage = rng.exponential(model.mean_outage);
    const double stall = rng.exponential(model.mean_stall);
    const double mult =
        rng.uniform(model.straggler_min, model.straggler_max);

    FaultSpec spec;
    spec.disk = d;
    if (u_fail < model.fail_stop_prob) {
      spec.kind = FaultKind::kFailStop;
      spec.at = at;
    } else if (u_crash < model.crash_prob) {
      spec.kind = FaultKind::kCrashRecover;
      spec.at = at;
      spec.duration = outage;
    } else if (u_stall < model.stall_prob) {
      spec.kind = FaultKind::kTransientStall;
      spec.at = at;
      spec.duration = stall;
    } else if (u_straggle < model.straggler_prob) {
      spec.kind = FaultKind::kSlowDisk;
      spec.at = 0.0;  // stragglers are slow from the start
      spec.service_multiplier = mult;
    } else {
      continue;  // this disk stays healthy
    }
    out.push_back(spec);
  }
  return out;
}

}  // namespace robustore::fault
