// A federated storage facility end to end: metadata service, credential-
// chain access control, admission control, and concurrent RobuSTore
// clients — the "distributed applications and shared storage" picture of
// Figure 3-1 assembled from every subsystem in this repository.
//
//   1. The facility admin delegates read access to a lab PI, who further
//      delegates to a student (Appendix C credential chain); the storage
//      servers validate the chain before serving.
//   2. The student's client opens the dataset through the metadata server
//      (Appendix B open semantics, §4.2 registry).
//   3. Several students read concurrently; per-disk admission control
//      (§5.4) keeps their streams from shredding each other's disk
//      bandwidth.

#include <cstdio>

#include "core/multi_client.hpp"
#include "meta/metadata_server.hpp"
#include "security/credentials.hpp"

int main() {
  using namespace robustore;

  // --- 1. access control ----------------------------------------------------
  security::KeyRegistry pki;
  const auto admin = pki.generate();
  const auto pi = pki.generate();
  const auto student = pki.generate();

  security::Conditions pi_grant;
  pi_grant.handle = 666240;
  pi_grant.rights = security::kRead | security::kWrite;
  security::Conditions student_grant = pi_grant;
  student_grant.rights = security::kRead;       // narrowed
  student_grant.not_after = 3600.0;             // today only

  const std::vector<security::Credential> chain{
      security::makeCredential(pki, admin, pi.public_key, pi_grant),
      security::makeCredential(pki, pi, student.public_key, student_grant)};

  security::AccessRequest request;
  request.handle = 666240;
  request.time = 120.0;
  request.needed_rights = security::kRead;
  const auto verdict = pki.validateChain(chain, admin.public_key,
                                         student.public_key, request);
  std::printf("credential chain (admin -> PI -> student): %s\n",
              security::toString(verdict));
  if (verdict != security::ChainStatus::kOk) return 1;

  // A write attempt with the same read-only chain must fail.
  request.needed_rights = security::kWrite;
  std::printf("student write attempt: %s (expected: insufficient rights)\n",
              security::toString(pki.validateChain(
                  chain, admin.public_key, student.public_key, request)));

  // --- 2. metadata open -------------------------------------------------------
  meta::MetadataServer metadata;
  for (std::uint32_t d = 0; d < 16; ++d) {
    meta::DiskRecord record;
    record.global_disk = d;
    record.site = d / 4;
    metadata.registerDisk(record);
  }
  meta::FileDescriptor wfd;
  metadata.open("sky_survey_2006.dat", meta::AccessType::kWrite,
                meta::QosOptions{}, &wfd);
  metadata.registerFile(wfd.handle, 64 * kMiB, kMiB, 64,
                        meta::CodingScheme::kLtCode, coding::LtParams{},
                        {{0, 64}, {1, 64}, {2, 64}, {3, 64}});
  metadata.close(wfd.handle);

  meta::FileDescriptor rfd;
  const auto status = metadata.open("sky_survey_2006.dat",
                                    meta::AccessType::kRead,
                                    meta::QosOptions{}, &rfd);
  std::printf("\nmetadata open: %s; file is %llu MB, LT-coded across %zu "
              "disks\n",
              status == meta::OpenStatus::kOk ? "ok" : "FAILED",
              static_cast<unsigned long long>(rfd.size / kMiB),
              rfd.locations.size());
  metadata.close(rfd.handle);

  // --- 3. concurrent reads under admission control ---------------------------
  core::MultiClientConfig cfg;
  cfg.num_servers = 4;
  cfg.disks_per_server = 4;
  cfg.num_clients = 6;
  cfg.disks_per_access = 8;
  cfg.access.k = 64;
  cfg.access.block_bytes = 256 * kKiB;
  cfg.access.redundancy = 2.0;
  cfg.layout.heterogeneous = false;
  cfg.retry_interval = 25 * kMilliseconds;
  cfg.seed = 12;

  core::MultiClientExperiment free_for_all(cfg);
  const auto chaos = free_for_all.run();
  cfg.admission.enabled = true;
  core::MultiClientExperiment governed(cfg);
  const auto order = governed.run();

  std::printf("\n6 students reading concurrently (16 MB each):\n");
  std::printf("  %-22s system %6.1f MBps, latency stddev %.3f s\n",
              "free-for-all:", chaos.system_throughput_mbps,
              chaos.accesses.latencyStdDev());
  std::printf("  %-22s system %6.1f MBps, latency stddev %.3f s "
              "(%llu polite refusals)\n",
              "admission-controlled:", order.system_throughput_mbps,
              order.accesses.latencyStdDev(),
              static_cast<unsigned long long>(order.admission_refusals));
  return 0;
}
