// Update access (§4.3.4): a curator fixes one corrupted 1 MB block inside
// a 128 MB LT-coded dataset. With a near-optimal code only the coded
// blocks adjacent to that original in the coding graph change — the
// client examines the graph, XOR-patches exactly those blocks, and the
// file still decodes to the corrected contents. With an optimal code
// (Reed-Solomon) the same edit would dirty every parity block.

#include <cstdio>
#include <vector>

#include "coding/lt_codec.hpp"
#include "coding/lt_graph.hpp"
#include "coding/update.hpp"
#include "common/rng.hpp"

int main() {
  using namespace robustore;
  const std::uint32_t k = 128;
  const std::uint32_t n = 512;
  const Bytes block = 1 * kMiB;

  Rng rng(42);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(k) * block);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));

  const auto graph = coding::LtGraph::generate(k, n, coding::LtParams{}, rng);
  const coding::LtEncoder encoder(graph, data, block);
  auto stored = encoder.encodeAll();
  std::printf("dataset: %u MB in %u coded blocks (%u MB stored)\n", k, n, n);

  // The curator replaces original block 42.
  const std::uint32_t target = 42;
  std::vector<std::uint8_t> fixed(block);
  for (auto& b : fixed) b = static_cast<std::uint8_t>(rng.below(256));
  const std::vector<std::uint8_t> old_block(
      data.begin() + static_cast<std::size_t>(target) * block,
      data.begin() + static_cast<std::size_t>(target + 1) * block);

  const coding::LtUpdater updater(graph);
  const auto plan = updater.plan(target);
  std::printf("updating original block %u dirties %zu of %u coded blocks "
              "(%.2f%% of stored data; graph mean %.1f)\n",
              target, plan.affected.size(), n, 100.0 * plan.fraction,
              updater.meanAffected());

  for (const auto c : plan.affected) {
    coding::LtUpdater::applyDelta(
        std::span(stored).subspan(static_cast<std::size_t>(c) * block, block),
        old_block, fixed);
  }
  std::copy(fixed.begin(), fixed.end(),
            data.begin() + static_cast<std::size_t>(target) * block);

  // Read the patched file back through the normal speculative path.
  coding::LtDecoder decoder(graph, block);
  const auto order = rng.permutation(n);
  for (const auto c : order) {
    if (decoder.addSymbol(c, std::span<const std::uint8_t>(stored).subspan(
                                 static_cast<std::size_t>(c) * block,
                                 block))) {
      break;
    }
  }
  const bool ok = decoder.complete() && decoder.takeData() == data;
  std::printf("decode after in-place update: %s (used %u blocks)\n",
              ok ? "OK" : "CORRUPTED", decoder.symbolsUsed());
  return ok ? 0 : 1;
}
