// Speculative rateless writing (§4.3.2, §5.3): a data-acquisition client
// streams a capture to whatever disks keep up. The example writes one
// file with RobuSTore's speculative writer, prints the per-disk commit
// counts (unbalanced striping!), verifies the committed set decodes, and
// then reads the file back after the disks' performance has changed.

#include <cstdio>
#include <vector>

#include "client/robustore_scheme.hpp"
#include "coding/lt_codec.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace robustore;

  sim::Engine engine;
  client::ClusterConfig cc;
  cc.num_servers = 2;
  cc.server.disks_per_server = 4;
  client::Cluster cluster(engine, cc, Rng(77));

  client::AccessConfig access;
  access.k = 128;  // 128 MB at 1 MB blocks
  access.block_bytes = 1 * kMiB;
  access.redundancy = 3.0;

  client::LayoutPolicy policy;  // heterogeneous: disks will differ wildly

  client::RobuStoreScheme scheme(cluster);
  Rng rng(3);
  client::StoredFile file;
  const auto wm = scheme.write(access, std::vector<std::uint32_t>{0, 1, 2, 3,
                                                                  4, 5, 6, 7},
                               policy, rng, &file);
  if (!wm.complete) {
    std::printf("write did not complete\n");
    return 1;
  }
  std::printf("wrote %u coded blocks (%u original) in %.2f s "
              "=> %.1f MBps write bandwidth\n",
              wm.blocks_received, access.k, wm.latency, wm.bandwidthMBps());

  std::printf("\nper-disk commits (speculative writing follows disk speed):\n");
  for (const auto& p : file.placements) {
    std::printf("  disk %u: %4zu blocks  [", p.global_disk, p.stored.size());
    const auto bar = static_cast<int>(p.stored.size() / 4);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("]\n");
  }

  // The writer's guarantee: what landed on disk decodes.
  coding::LtDecoder check(*file.lt_graph);
  for (const auto& p : file.placements) {
    for (const auto id : p.stored) check.addSymbol(static_cast<std::uint32_t>(id));
  }
  std::printf("\ncommitted set decodable: %s\n",
              check.complete() ? "yes" : "NO (bug!)");

  // Disks change between write and read; redraw layouts and read back.
  file.redrawLayouts(policy, rng);
  const auto rm = scheme.read(file, access);
  std::printf("read-back: %.1f MBps using %u of %llu stored blocks "
              "(reception overhead %.0f%%)\n",
              rm.bandwidthMBps(), rm.blocks_received,
              static_cast<unsigned long long>(file.totalStoredBlocks()),
              rm.receptionOverhead() * 100);
  return rm.complete && check.complete() ? 0 : 1;
}
