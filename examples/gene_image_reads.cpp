// BIRN-style workload (§1.1): interactive reads of large biomedical
// images from a shared federated storage system. A scientist pulls a
// 1 GB image; other labs' jobs keep the disks busy. This example compares
// all four storage schemes on that workload and shows why predictable
// latency matters for interactive use.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace robustore;
  std::printf("Scenario: interactive 1 GB image reads from a shared\n"
              "federated store (64 of 128 disks, heterogeneous layouts,\n"
              "competitive workloads from other users)\n\n");

  core::ExperimentConfig cfg;
  cfg.access.k = 512;  // 512 MB images keep the demo quick
  cfg.access.block_bytes = 1 * kMiB;
  cfg.access.redundancy = 3.0;
  cfg.background = core::ExperimentConfig::Background::kHeterogeneous;
  cfg.trials = core::ExperimentRunner::trialsFromEnv(8);

  core::ExperimentRunner runner(cfg);
  std::printf("%-10s %14s %16s %18s %14s\n", "scheme", "MBps",
              "mean latency", "latency stddev", "I/O overhead");
  for (const auto& result : runner.runAll()) {
    const auto& a = result.aggregate;
    std::printf("%-10s %14.1f %15.2fs %17.3fs %13.0f%%\n",
                client::schemeName(result.kind), a.meanBandwidthMBps(),
                a.meanLatency(), a.latencyStdDev(),
                a.meanIoOverhead() * 100);
  }
  std::printf("\nAn interactive viewer needs both the high bandwidth and\n"
              "the small latency spread: RobuSTore's erasure-coded\n"
              "speculative reads deliver a predictable wait; the striped\n"
              "schemes stall on whichever disk another lab is hammering.\n");
  return 0;
}
