// AstroGrid-style scenario (§1.1): a telescope archive replicated across
// continents. The client sits 1..100 ms away from the storage sites and
// pulls 128 MB observation files. This example demonstrates the paper's
// latency-tolerance claim: single-round speculative access makes WAN
// distance nearly free, while adaptive multi-round access pays for every
// extra round trip (Figures 6-12..6-14).

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace robustore;
  std::printf("Scenario: 128 MB observation files pulled across a WAN\n"
              "(client-to-archive RTT swept from metro to intercontinental)\n\n");

  std::printf("%-8s %14s %14s %14s %14s\n", "RTT", "RAID-0", "RRAID-S",
              "RRAID-A", "RobuSTore");
  std::printf("%-8s %s\n", "", "(read bandwidth, MBps)");
  for (const double ms : {1.0, 25.0, 100.0}) {
    core::ExperimentConfig cfg;
    cfg.access.k = 128;  // 128 MB
    cfg.round_trip = ms * kMilliseconds;
    cfg.trials = core::ExperimentRunner::trialsFromEnv(6);
    core::ExperimentRunner runner(cfg);
    std::printf("%-8s", (std::to_string(static_cast<int>(ms)) + "ms").c_str());
    for (const auto& result : runner.runAll()) {
      std::printf(" %14.1f", result.aggregate.meanBandwidthMBps());
    }
    std::printf("\n");
  }
  std::printf("\nExpected: RAID-0/RRAID-S/RobuSTore curves are flat in RTT\n"
              "(one request round); RRAID-A drops visibly because its\n"
              "work-stealing needs extra rounds — worst for small files.\n");
  return 0;
}
