// Quickstart: the RobuSTore coding data plane plus a minimal simulated
// access.
//
//   1. Encode a buffer into rateless LT coded blocks.
//   2. Decode it back from a random subset (symmetric redundancy).
//   3. Run one simulated 64 MB read against a small heterogeneous cluster
//      and print the paper's three metrics.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "client/robustore_scheme.hpp"
#include "coding/lt_codec.hpp"
#include "coding/lt_graph.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace robustore;

  // --- 1. Encode ---------------------------------------------------------
  const std::uint32_t k = 64;       // original blocks
  const std::uint32_t n = 256;      // coded blocks (3x redundancy)
  const Bytes block = 64 * kKiB;

  Rng rng(2006);
  std::vector<std::uint8_t> original(k * block);
  for (auto& b : original) b = static_cast<std::uint8_t>(rng.below(256));

  const auto graph = coding::LtGraph::generate(k, n, coding::LtParams{}, rng);
  const coding::LtEncoder encoder(graph, original, block);
  const auto coded = encoder.encodeAll();
  std::printf("encoded %u blocks -> %u coded blocks (%.1f MB)\n", k, n,
              static_cast<double>(coded.size()) / 1e6);

  // --- 2. Decode from a random arrival order ------------------------------
  coding::LtDecoder decoder(graph, block);
  const auto arrival = rng.permutation(n);
  for (const auto c : arrival) {
    if (decoder.addSymbol(c,
                          std::span(coded).subspan(
                              static_cast<std::size_t>(c) * block, block))) {
      break;
    }
  }
  const bool ok = decoder.complete() && decoder.takeData() == original;
  std::printf("decoded from %u of %u blocks (reception overhead %.0f%%): %s\n",
              decoder.symbolsUsed(), n,
              (static_cast<double>(decoder.symbolsUsed()) / k - 1.0) * 100,
              ok ? "OK" : "FAILED");
  if (!ok) return 1;

  // --- 3. One simulated access --------------------------------------------
  core::ExperimentConfig cfg;
  cfg.num_servers = 2;
  cfg.disks_per_server = 4;
  cfg.disks_per_access = 8;
  cfg.access.k = k;
  cfg.access.block_bytes = block;
  cfg.access.redundancy = 3.0;
  cfg.trials = 5;
  core::ExperimentRunner runner(cfg);
  const auto agg = runner.run(client::SchemeKind::kRobuStore);
  std::printf(
      "simulated %zu reads of %.0f MB over 8 heterogeneous disks:\n"
      "  bandwidth %.1f MBps, latency stddev %.3f s, I/O overhead %.0f%%\n",
      agg.trials(), static_cast<double>(cfg.access.dataBytes()) / 1e6,
      agg.meanBandwidthMBps(), agg.latencyStdDev(),
      agg.meanIoOverhead() * 100);
  return 0;
}
